//! Correlation-structured data reproducing the paper's Figure 1
//! scenario: a query point whose outlyingness is visible in one 2-d
//! view and absent in others.
//!
//! Dimensions come in pairs. In a *correlated* pair the second
//! coordinate is a linear function of the first plus small noise, so
//! the data forms a tight band; a point that is marginally normal in
//! each coordinate but off the band is a strong 2-d outlier. In a
//! *blob* pair the coordinates are independent, so the same point is
//! unremarkable.

use super::normal;
use crate::dataset::Dataset;
use crate::error::DataError;
use crate::subspace::Subspace;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of pairwise-structured data.
#[derive(Clone, Debug)]
pub struct CorrelatedSpec {
    /// Number of background points.
    pub n: usize,
    /// Number of dimension *pairs*; total dimensionality is `2 * pairs`.
    pub pairs: usize,
    /// Indices of pairs (0-based) that carry the correlation band;
    /// the rest are independent blobs.
    pub correlated_pairs: Vec<usize>,
    /// Noise level of the band (fraction of the coordinate range).
    pub band_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorrelatedSpec {
    fn default() -> Self {
        CorrelatedSpec {
            n: 300,
            pairs: 3,
            correlated_pairs: vec![0],
            band_noise: 0.03,
            seed: 0,
        }
    }
}

/// Output of [`figure1_views`]: the dataset, the query point and the
/// 2-d views (as subspaces) in which the query is expected to be an
/// outlier / inlier respectively.
#[derive(Clone, Debug)]
pub struct Figure1Data {
    /// Background points.
    pub dataset: Dataset,
    /// The query point `p` from Figure 1.
    pub query: Vec<f64>,
    /// Views where `p` breaks the structure (expected outlying).
    pub outlying_views: Vec<Subspace>,
    /// Views where `p` blends in (expected non-outlying).
    pub inlying_views: Vec<Subspace>,
}

/// Generates the Figure 1 workload.
///
/// Coordinates live in `[0, 1]`. In correlated pairs the band is
/// `y = x` with `band_noise` jitter and the query sits at
/// `(0.1, 0.9)` — marginally typical (both coordinates are well inside
/// the data range), but maximally far off the band, so the joint view
/// is strongly anomalous. In blob pairs both coordinates are
/// independent `N(0.5, 0.15)` and the query sits near the blob centre.
pub fn figure1_views(spec: &CorrelatedSpec) -> Result<Figure1Data> {
    if spec.pairs == 0 || spec.n == 0 {
        return Err(DataError::Empty);
    }
    for &p in &spec.correlated_pairs {
        if p >= spec.pairs {
            return Err(DataError::InvalidParam(format!(
                "correlated pair {p} out of range 0..{}",
                spec.pairs
            )));
        }
    }
    let d = spec.pairs * 2;
    if d > crate::subspace::MAX_DIM {
        return Err(DataError::DimTooLarge {
            dim: d,
            max: crate::subspace::MAX_DIM,
        });
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut flat = Vec::with_capacity(spec.n * d);
    for _ in 0..spec.n {
        for p in 0..spec.pairs {
            if spec.correlated_pairs.contains(&p) {
                let x: f64 = rng.gen_range(0.0..1.0);
                let y = (x + normal(&mut rng, 0.0, spec.band_noise)).clamp(0.0, 1.0);
                flat.push(x);
                flat.push(y);
            } else {
                flat.push(normal(&mut rng, 0.5, 0.15).clamp(0.0, 1.0));
                flat.push(normal(&mut rng, 0.5, 0.15).clamp(0.0, 1.0));
            }
        }
    }
    let dataset = Dataset::from_flat(flat, d)?;

    let mut query = Vec::with_capacity(d);
    let mut outlying_views = Vec::new();
    let mut inlying_views = Vec::new();
    for p in 0..spec.pairs {
        let view = Subspace::from_dims(&[2 * p, 2 * p + 1]);
        if spec.correlated_pairs.contains(&p) {
            // Marginally typical, far off the band.
            query.push(0.1);
            query.push(0.9);
            outlying_views.push(view);
        } else {
            query.push(0.5);
            query.push(0.52);
            inlying_views.push(view);
        }
    }

    Ok(Figure1Data {
        dataset,
        query,
        outlying_views,
        inlying_views,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Metric;

    #[test]
    fn shape() {
        let f = figure1_views(&CorrelatedSpec::default()).unwrap();
        assert_eq!(f.dataset.dim(), 6);
        assert_eq!(f.dataset.len(), 300);
        assert_eq!(f.query.len(), 6);
        assert_eq!(f.outlying_views.len(), 1);
        assert_eq!(f.inlying_views.len(), 2);
    }

    #[test]
    fn query_is_anomalous_only_in_correlated_view() {
        let f = figure1_views(&CorrelatedSpec::default()).unwrap();
        // Average distance to 5 nearest neighbours per view.
        let knn_score = |view: Subspace| -> f64 {
            let mut dists: Vec<f64> = f
                .dataset
                .iter()
                .map(|(_, row)| Metric::L2.dist_sub(&f.query, row, view))
                .collect();
            dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
            dists.iter().take(5).sum()
        };
        let outlying = knn_score(f.outlying_views[0]);
        for &v in &f.inlying_views {
            let inlying = knn_score(v);
            assert!(
                outlying > inlying * 3.0,
                "outlying view score {outlying} vs inlying {inlying}"
            );
        }
    }

    #[test]
    fn band_is_tight() {
        let f = figure1_views(&CorrelatedSpec::default()).unwrap();
        // In the correlated pair, |y - x| stays small for background
        // points.
        let mut max_gap: f64 = 0.0;
        for (_, row) in f.dataset.iter() {
            max_gap = max_gap.max((row[0] - row[1]).abs());
        }
        assert!(max_gap < 0.25, "band gap {max_gap}");
        // While the query is far off the band.
        assert!((f.query[0] - f.query[1]).abs() > 0.6);
    }

    #[test]
    fn validation() {
        let s = CorrelatedSpec {
            pairs: 0,
            ..CorrelatedSpec::default()
        };
        assert!(figure1_views(&s).is_err());
        let s = CorrelatedSpec {
            correlated_pairs: vec![9],
            ..CorrelatedSpec::default()
        };
        assert!(figure1_views(&s).is_err());
        let s = CorrelatedSpec {
            n: 0,
            ..CorrelatedSpec::default()
        };
        assert!(figure1_views(&s).is_err());
        // 80 dims > MAX_DIM
        let s = CorrelatedSpec {
            pairs: 40,
            ..CorrelatedSpec::default()
        };
        assert!(figure1_views(&s).is_err());
    }

    #[test]
    fn deterministic() {
        let a = figure1_views(&CorrelatedSpec::default()).unwrap();
        let b = figure1_views(&CorrelatedSpec::default()).unwrap();
        assert_eq!(a.dataset, b.dataset);
    }
}
