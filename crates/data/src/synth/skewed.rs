//! Skewed-marginal data: exponential and log-normal columns.
//!
//! Distance-threshold methods behave differently on heavy-tailed
//! marginals (the "outliers" of a skewed column are its routine tail),
//! so the test and experiment suites need a generator whose columns
//! are *not* symmetric. Variates derive from the crate's Box–Muller
//! normal (log-normal) and inverse-CDF sampling (exponential), keeping
//! the dependency set unchanged.

use super::{normal, std_normal};
use crate::dataset::Dataset;
use crate::error::DataError;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Marginal distribution of one column.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ColumnDist {
    /// Normal with mean and standard deviation.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation (> 0).
        sd: f64,
    },
    /// Exponential with rate `lambda` (> 0); mean `1/lambda`.
    Exponential {
        /// Rate parameter.
        lambda: f64,
    },
    /// Log-normal: `exp(N(mu, sigma))`.
    LogNormal {
        /// Location of the underlying normal.
        mu: f64,
        /// Scale of the underlying normal (> 0).
        sigma: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound (> lo).
        hi: f64,
    },
}

impl ColumnDist {
    fn validate(&self) -> Result<()> {
        let ok = match self {
            ColumnDist::Normal { sd, .. } => *sd > 0.0,
            ColumnDist::Exponential { lambda } => *lambda > 0.0,
            ColumnDist::LogNormal { sigma, .. } => *sigma > 0.0,
            ColumnDist::Uniform { lo, hi } => hi > lo,
        };
        if ok {
            Ok(())
        } else {
            Err(DataError::InvalidParam(format!(
                "invalid column distribution {self:?}"
            )))
        }
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ColumnDist::Normal { mean, sd } => normal(rng, mean, sd),
            ColumnDist::Exponential { lambda } => {
                // Inverse CDF; guard log(0).
                let u: f64 = loop {
                    let u = rng.gen::<f64>();
                    if u > f64::MIN_POSITIVE {
                        break u;
                    }
                };
                -u.ln() / lambda
            }
            ColumnDist::LogNormal { mu, sigma } => (mu + sigma * std_normal(rng)).exp(),
            ColumnDist::Uniform { lo, hi } => rng.gen_range(lo..hi),
        }
    }
}

/// Generates `n` points whose columns follow the given independent
/// marginals (one [`ColumnDist`] per dimension).
pub fn mixed_marginals(n: usize, columns: &[ColumnDist], seed: u64) -> Result<Dataset> {
    if columns.is_empty() {
        return Err(DataError::Empty);
    }
    for c in columns {
        c.validate()?;
    }
    let d = columns.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flat = Vec::with_capacity(n * d);
    for _ in 0..n {
        for c in columns {
            flat.push(c.sample(&mut rng));
        }
    }
    Dataset::from_flat(flat, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn exponential_moments() {
        let cols = [ColumnDist::Exponential { lambda: 2.0 }];
        let ds = mixed_marginals(20_000, &cols, 5).unwrap();
        let col = ds.column_vec(0);
        assert!((stats::mean(&col) - 0.5).abs() < 0.02);
        // Exponential is non-negative and right-skewed: median < mean.
        assert!(col.iter().all(|&v| v >= 0.0));
        let median = stats::quantile(&col, 0.5).unwrap();
        assert!(median < stats::mean(&col));
    }

    #[test]
    fn lognormal_moments() {
        let cols = [ColumnDist::LogNormal {
            mu: 0.0,
            sigma: 0.5,
        }];
        let ds = mixed_marginals(20_000, &cols, 7).unwrap();
        let col = ds.column_vec(0);
        // E[lognormal] = exp(mu + sigma^2/2).
        let expected = (0.125f64).exp();
        assert!(
            (stats::mean(&col) - expected).abs() < 0.03,
            "mean {}",
            stats::mean(&col)
        );
        assert!(col.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn mixed_columns_are_independent_shapes() {
        let cols = [
            ColumnDist::Normal {
                mean: 10.0,
                sd: 1.0,
            },
            ColumnDist::Exponential { lambda: 1.0 },
            ColumnDist::Uniform { lo: -1.0, hi: 1.0 },
        ];
        let ds = mixed_marginals(5000, &cols, 3).unwrap();
        assert_eq!(ds.dim(), 3);
        assert!((stats::mean(&ds.column_vec(0)) - 10.0).abs() < 0.1);
        assert!((stats::mean(&ds.column_vec(1)) - 1.0).abs() < 0.1);
        assert!(ds.column(2).all(|v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn validation() {
        assert!(mixed_marginals(10, &[], 0).is_err());
        assert!(mixed_marginals(10, &[ColumnDist::Normal { mean: 0.0, sd: 0.0 }], 0).is_err());
        assert!(mixed_marginals(10, &[ColumnDist::Exponential { lambda: -1.0 }], 0).is_err());
        assert!(mixed_marginals(10, &[ColumnDist::Uniform { lo: 1.0, hi: 1.0 }], 0).is_err());
        assert!(mixed_marginals(
            10,
            &[ColumnDist::LogNormal {
                mu: 0.0,
                sigma: 0.0
            }],
            0
        )
        .is_err());
    }

    #[test]
    fn deterministic() {
        let cols = [ColumnDist::Exponential { lambda: 1.0 }; 2];
        let a = mixed_marginals(100, &cols, 11).unwrap();
        let b = mixed_marginals(100, &cols, 11).unwrap();
        assert_eq!(a, b);
    }
}
