//! Planted-outlier workloads with recorded ground truth.
//!
//! The generator lays down a clustered Gaussian background, then
//! injects outlier points that deviate from their cluster **only in a
//! chosen target subspace**: the deviation budget is spread across the
//! target dimensions so that no single dimension looks anomalous on its
//! own (each per-dimension shift shrinks as `1/sqrt(|s|)` for L2-style
//! metrics), while the joint displacement in the full target subspace
//! is large. This is exactly the Figure 1 phenomenon: the point is an
//! outlier in one view and unremarkable in lower-dimensional ones.
//!
//! The recorded `(point, subspace)` pairs are *intended* ground truth.
//! For exact evaluation the experiment harness recomputes true minimal
//! outlying subspaces with the exhaustive searcher (feasible for the
//! d ≤ 12 workloads used in effectiveness experiments), so metrics
//! never depend on the planting heuristic being perfect.

use super::gaussian::GaussianMixture;
use super::normal;
use crate::dataset::{Dataset, PointId};
use crate::error::DataError;
use crate::subspace::Subspace;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for a planted workload.
#[derive(Clone, Debug)]
pub struct PlantedSpec {
    /// Number of background points.
    pub n_background: usize,
    /// Dimensionality.
    pub d: usize,
    /// Number of background Gaussian clusters.
    pub n_clusters: usize,
    /// Standard deviation of each background cluster.
    pub cluster_sigma: f64,
    /// Extent of the cube cluster centres are drawn from.
    pub extent: f64,
    /// Target subspaces to plant one outlier each in.
    pub targets: Vec<Subspace>,
    /// Total displacement of each outlier, in units of cluster sigma,
    /// measured in the target subspace (L2). 8–12 gives clearly
    /// detectable but not absurd outliers.
    pub shift_sigmas: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedSpec {
    fn default() -> Self {
        PlantedSpec {
            n_background: 1000,
            d: 8,
            n_clusters: 3,
            cluster_sigma: 1.0,
            extent: 100.0,
            targets: vec![],
            shift_sigmas: 10.0,
            seed: 0,
        }
    }
}

/// One planted outlier: which point and which subspace it targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlantedOutlier {
    /// Row of the outlier in the generated dataset.
    pub id: PointId,
    /// The subspace the deviation was injected into.
    pub subspace: Subspace,
}

/// The generated workload: data plus intended ground truth.
#[derive(Clone, Debug)]
pub struct PlantedWorkload {
    /// The full dataset (background points first, then outliers).
    pub dataset: Dataset,
    /// The injected outliers, in insertion order.
    pub outliers: Vec<PlantedOutlier>,
    /// The mixture the background was drawn from.
    pub mixture: GaussianMixture,
}

impl PlantedWorkload {
    /// Ids of all planted outliers.
    pub fn outlier_ids(&self) -> Vec<PointId> {
        self.outliers.iter().map(|o| o.id).collect()
    }

    /// The target subspace planted for a given point, if any.
    pub fn target_of(&self, id: PointId) -> Option<Subspace> {
        self.outliers
            .iter()
            .find(|o| o.id == id)
            .map(|o| o.subspace)
    }
}

/// Generates a planted workload.
pub fn generate(spec: &PlantedSpec) -> Result<PlantedWorkload> {
    if spec.d == 0 {
        return Err(DataError::InvalidParam("d must be positive".into()));
    }
    for t in &spec.targets {
        if t.is_empty() {
            return Err(DataError::InvalidParam(
                "target subspace must be non-empty".into(),
            ));
        }
        if let Some(max) = t.dim_vec().last() {
            if *max >= spec.d {
                return Err(DataError::InvalidParam(format!(
                    "target {t} references dimension beyond d={}",
                    spec.d
                )));
            }
        }
    }
    if spec.shift_sigmas <= 0.0 {
        return Err(DataError::InvalidParam(
            "shift_sigmas must be positive".into(),
        ));
    }

    let mixture = GaussianMixture::random(
        spec.n_clusters.max(1),
        spec.d,
        spec.extent,
        spec.cluster_sigma,
        spec.seed ^ 0x9e37_79b9_7f4a_7c15,
    )?;
    let (mut dataset, _assign) = mixture.generate(spec.n_background, spec.seed)?;

    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(1));
    let mut outliers = Vec::with_capacity(spec.targets.len());
    for &target in &spec.targets {
        // Anchor the outlier to a random cluster centre with normal
        // in-cluster noise everywhere, then push it away inside the
        // target subspace only.
        let ci = rng.gen_range(0..mixture.clusters().len());
        let cluster = &mixture.clusters()[ci];
        let mut row: Vec<f64> = cluster
            .center
            .iter()
            .map(|&mu| normal(&mut rng, mu, cluster.sigma))
            .collect();
        let m = target.dim() as f64;
        // Spread the total displacement across the target dims so each
        // marginal stays modest: per-dim shift keeps the L2 norm of the
        // shift vector equal to shift_sigmas * sigma.
        let per_dim = spec.shift_sigmas * cluster.sigma / m.sqrt();
        for dim in target.dims() {
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            row[dim] += sign * per_dim;
        }
        let id = dataset.push_row(&row)?;
        outliers.push(PlantedOutlier {
            id,
            subspace: target,
        });
    }

    Ok(PlantedWorkload {
        dataset,
        outliers,
        mixture,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Metric;

    fn spec() -> PlantedSpec {
        PlantedSpec {
            n_background: 400,
            d: 6,
            n_clusters: 2,
            cluster_sigma: 1.0,
            extent: 50.0,
            targets: vec![Subspace::from_dims(&[0, 1]), Subspace::from_dims(&[3])],
            shift_sigmas: 10.0,
            seed: 42,
        }
    }

    #[test]
    fn shape_and_bookkeeping() {
        let w = generate(&spec()).unwrap();
        assert_eq!(w.dataset.len(), 402);
        assert_eq!(w.outliers.len(), 2);
        assert_eq!(w.outlier_ids(), vec![400, 401]);
        assert_eq!(w.target_of(400), Some(Subspace::from_dims(&[0, 1])));
        assert_eq!(w.target_of(401), Some(Subspace::from_dims(&[3])));
        assert_eq!(w.target_of(0), None);
    }

    #[test]
    fn outlier_is_far_in_target_subspace() {
        let w = generate(&spec()).unwrap();
        let o = &w.outliers[0];
        let row = w.dataset.row(o.id);
        // Distance in the target subspace to the nearest background
        // point should be much larger than typical in-cluster spread.
        let mut min_target = f64::INFINITY;
        for (i, other) in w.dataset.iter() {
            if i == o.id {
                continue;
            }
            let dist = Metric::L2.dist_sub(row, other, o.subspace);
            min_target = min_target.min(dist);
        }
        // 10-sigma displacement should leave at least several sigma of
        // clearance even after noise.
        assert!(min_target > 3.0, "min target-subspace NN dist {min_target}");
    }

    #[test]
    fn per_dim_shift_shrinks_with_subspace_size() {
        // A 4-dim target spreads the same budget across more axes, so
        // each single dimension deviates less than a 1-dim target.
        // A single background cluster keeps the per-axis gap
        // measurement below from being confounded by other modes.
        let mut s = spec();
        s.n_clusters = 1;
        s.targets = vec![
            Subspace::from_dims(&[0, 1, 2, 3]),
            Subspace::from_dims(&[4]),
        ];
        let w = generate(&s).unwrap();
        let wide = &w.outliers[0];
        let narrow = &w.outliers[1];
        // Compare deviation on a single axis of each target against the
        // background spread: the single-dim target must deviate more
        // per axis.
        let wide_axis = wide.subspace.dim_vec()[0];
        let narrow_axis = narrow.subspace.dim_vec()[0];
        let dev = |id: PointId, axis: usize| -> f64 {
            let col = w.dataset.column_vec(axis);
            let others: Vec<f64> = col
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != id)
                .map(|(_, v)| *v)
                .collect();
            let v = w.dataset.get(id, axis);
            let nearest_gap = others
                .iter()
                .map(|o| (o - v).abs())
                .fold(f64::INFINITY, f64::min);
            nearest_gap
        };
        // Not a strict invariant point-by-point (noise), but with
        // 10 sigma vs 5 sigma per-dim budgets the ordering holds easily.
        assert!(dev(narrow.id, narrow_axis) > dev(wide.id, wide_axis) * 0.5);
    }

    #[test]
    fn validation_errors() {
        let mut s = spec();
        s.targets = vec![Subspace::empty()];
        assert!(generate(&s).is_err());
        let mut s = spec();
        s.targets = vec![Subspace::from_dims(&[7])]; // beyond d=6
        assert!(generate(&s).is_err());
        let mut s = spec();
        s.shift_sigmas = 0.0;
        assert!(generate(&s).is_err());
        let mut s = spec();
        s.d = 0;
        assert!(generate(&s).is_err());
    }

    #[test]
    fn deterministic() {
        let a = generate(&spec()).unwrap();
        let b = generate(&spec()).unwrap();
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.outliers, b.outliers);
    }
}
