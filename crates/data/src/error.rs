//! Error type shared across the data layer.

use std::fmt;

/// Errors produced while constructing, loading or transforming datasets.
#[derive(Debug)]
pub enum DataError {
    /// Underlying I/O failure (file open, read, write).
    Io(std::io::Error),
    /// A text record could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// A row had a different arity than the dataset dimensionality.
    Shape {
        /// Expected number of columns.
        expected: usize,
        /// Number of columns actually seen.
        got: usize,
    },
    /// The operation requires a non-empty dataset.
    Empty,
    /// Requested dimensionality exceeds what a `u64` subspace mask holds.
    DimTooLarge {
        /// Requested dimensionality.
        dim: usize,
        /// Maximum supported dimensionality.
        max: usize,
    },
    /// A non-finite value (`NaN`/`±inf`) was found where finite data is required.
    NonFinite {
        /// Row index of the offending value.
        row: usize,
        /// Column index of the offending value.
        col: usize,
    },
    /// An index was out of bounds for the dataset.
    OutOfBounds {
        /// What kind of index (e.g. "row", "column").
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        len: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParam(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            DataError::Shape { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} columns, got {got}"
                )
            }
            DataError::Empty => write!(f, "operation requires a non-empty dataset"),
            DataError::DimTooLarge { dim, max } => {
                write!(
                    f,
                    "dimensionality {dim} exceeds the supported maximum {max}"
                )
            }
            DataError::NonFinite { row, col } => {
                write!(f, "non-finite value at row {row}, column {col}")
            }
            DataError::OutOfBounds { what, index, len } => {
                write!(f, "{what} index {index} out of bounds (len {len})")
            }
            DataError::InvalidParam(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<DataError> = vec![
            DataError::Io(std::io::Error::other("boom")),
            DataError::Parse {
                line: 3,
                msg: "bad float".into(),
            },
            DataError::Shape {
                expected: 4,
                got: 2,
            },
            DataError::Empty,
            DataError::DimTooLarge { dim: 100, max: 63 },
            DataError::NonFinite { row: 1, col: 2 },
            DataError::OutOfBounds {
                what: "row",
                index: 9,
                len: 3,
            },
            DataError::InvalidParam("k must be positive".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: DataError = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(matches!(e, DataError::Io(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
