//! Axis-parallel subspaces of `R^d` as `u64` bitmasks.
//!
//! Bit `i` set means dimension `i` (0-based) participates in the
//! subspace. The paper displays subspaces 1-based (e.g. `[1,3]` in a
//! 4-dimensional space); [`Subspace`]'s `Display`/`FromStr` follow that
//! convention while the programmatic API stays 0-based.

use std::fmt;
use std::str::FromStr;

/// Maximum supported dimensionality (bits in the mask, minus the sign
/// safety margin we keep so `1u64 << d` never overflows).
pub const MAX_DIM: usize = 63;

/// An axis-parallel subspace encoded as a bitmask over dimensions.
///
/// ```
/// use hos_data::Subspace;
///
/// let s = Subspace::from_dims(&[0, 2]);      // dimensions 1 and 3, 1-based
/// assert_eq!(s.to_string(), "[1,3]");        // displayed like the paper
/// assert_eq!(s.dim(), 2);
/// assert!(s.is_subset_of(Subspace::full(4)));
/// assert_eq!("[1,3]".parse::<Subspace>().unwrap(), s);
///
/// // Lattice navigation:
/// assert_eq!(s.subsets().count(), 3);        // [1], [3], [1,3]
/// assert_eq!(s.supersets(4).count(), 4);     // [1,3] [1,2,3] [1,3,4] [1,2,3,4]
/// assert_eq!(Subspace::all_of_dim(4, 2).count(), 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Subspace(u64);

impl Subspace {
    /// The empty subspace (no dimensions).
    #[inline]
    pub const fn empty() -> Self {
        Subspace(0)
    }

    /// The full space over `d` dimensions.
    ///
    /// # Panics
    /// Panics if `d > MAX_DIM`.
    #[inline]
    pub fn full(d: usize) -> Self {
        assert!(d <= MAX_DIM, "dimensionality {d} exceeds MAX_DIM {MAX_DIM}");
        if d == 0 {
            Subspace(0)
        } else {
            Subspace(u64::MAX >> (64 - d))
        }
    }

    /// Builds a subspace from a raw bitmask.
    #[inline]
    pub const fn from_mask(mask: u64) -> Self {
        Subspace(mask)
    }

    /// Builds a subspace containing exactly one dimension.
    #[inline]
    pub fn single(dim: usize) -> Self {
        assert!(dim < MAX_DIM, "dimension {dim} exceeds MAX_DIM");
        Subspace(1u64 << dim)
    }

    /// Builds a subspace from a list of 0-based dimensions.
    pub fn from_dims(dims: &[usize]) -> Self {
        let mut mask = 0u64;
        for &d in dims {
            assert!(d < MAX_DIM, "dimension {d} exceeds MAX_DIM");
            mask |= 1u64 << d;
        }
        Subspace(mask)
    }

    /// The raw bitmask.
    #[inline]
    pub const fn mask(self) -> u64 {
        self.0
    }

    /// Number of dimensions in the subspace (the paper's `dim(s)`).
    #[inline]
    pub const fn dim(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the subspace contains no dimensions.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether dimension `dim` (0-based) participates.
    #[inline]
    pub const fn contains_dim(self, dim: usize) -> bool {
        dim < 64 && (self.0 >> dim) & 1 == 1
    }

    /// `self ⊆ other`.
    #[inline]
    pub const fn is_subset_of(self, other: Subspace) -> bool {
        self.0 & other.0 == self.0
    }

    /// `self ⊇ other`.
    #[inline]
    pub const fn is_superset_of(self, other: Subspace) -> bool {
        other.0 & self.0 == other.0
    }

    /// `self ⊂ other` (strict).
    #[inline]
    pub const fn is_strict_subset_of(self, other: Subspace) -> bool {
        self.0 != other.0 && self.is_subset_of(other)
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: Subspace) -> Subspace {
        Subspace(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersect(self, other: Subspace) -> Subspace {
        Subspace(self.0 & other.0)
    }

    /// Dimensions of `self` not in `other`.
    #[inline]
    pub const fn difference(self, other: Subspace) -> Subspace {
        Subspace(self.0 & !other.0)
    }

    /// Complement within a `d`-dimensional full space.
    #[inline]
    pub fn complement(self, d: usize) -> Subspace {
        Subspace(Self::full(d).0 & !self.0)
    }

    /// Adds a dimension, returning the enlarged subspace.
    #[inline]
    pub fn with_dim(self, dim: usize) -> Subspace {
        assert!(dim < MAX_DIM);
        Subspace(self.0 | (1u64 << dim))
    }

    /// Removes a dimension, returning the shrunk subspace.
    #[inline]
    pub fn without_dim(self, dim: usize) -> Subspace {
        Subspace(self.0 & !(1u64 << dim))
    }

    /// Iterates the 0-based dimensions present, in increasing order.
    #[inline]
    pub fn dims(self) -> DimIter {
        DimIter(self.0)
    }

    /// Collects the 0-based dimensions into a `Vec`.
    pub fn dim_vec(self) -> Vec<usize> {
        self.dims().collect()
    }

    /// Iterates every non-empty subset of `self` (including `self`).
    pub fn subsets(self) -> SubsetIter {
        SubsetIter {
            mask: self.0,
            sub: self.0,
            done: self.0 == 0,
        }
    }

    /// Iterates every strict, non-empty subset of `self`.
    pub fn strict_subsets(self) -> impl Iterator<Item = Subspace> {
        let me = self;
        self.subsets().filter(move |s| *s != me)
    }

    /// Iterates every superset of `self` within a `d`-dimensional space
    /// (including `self`).
    pub fn supersets(self, d: usize) -> impl Iterator<Item = Subspace> {
        let comp = self.complement(d);
        let base = self;
        // Supersets of s = s ∪ t for every subset t of the complement
        // (including the empty t, which yields s itself).
        std::iter::once(base).chain(comp.subsets().map(move |t| base.union(t)))
    }

    /// Enumerates all subspaces of cardinality `m` within `d`
    /// dimensions, in increasing mask order (Gosper's hack).
    pub fn all_of_dim(d: usize, m: usize) -> CardinalityIter {
        assert!(d <= MAX_DIM);
        if m == 0 || m > d {
            return CardinalityIter {
                cur: 0,
                limit: 0,
                done: true,
            };
        }
        CardinalityIter {
            cur: (1u64 << m) - 1,
            limit: Subspace::full(d).0,
            done: false,
        }
    }

    /// Enumerates every non-empty subspace of a `d`-dimensional space
    /// in increasing mask order. There are `2^d - 1` of them.
    pub fn all_nonempty(d: usize) -> impl Iterator<Item = Subspace> {
        assert!(d <= MAX_DIM);
        let limit = Subspace::full(d).0;
        (1..=limit).map(Subspace::from_mask)
    }

    /// Walker (prefix-trie DFS) order: lexicographic comparison of the
    /// ascending dimension sequences, with a proper prefix ordering
    /// before its extensions. This is the depth-first preorder of the
    /// trie whose root-to-node paths are ascending dimension lists —
    /// consecutive subspaces in this order share the longest possible
    /// ascending-dim prefix, which is what lets a prefix-stack kernel
    /// re-use parent accumulators and pay `O(n)` per visited node.
    ///
    /// Not mask order: over 3 dimensions the walk order is `{0}`,
    /// `{0,1}`, `{0,1,2}`, `{0,2}`, `{1}`, `{1,2}`, `{2}` while mask
    /// order interleaves levels (`{0}`, `{1}`, `{0,1}`, `{2}`, …).
    pub fn walk_cmp(self, other: Subspace) -> std::cmp::Ordering {
        let (mut a, mut b) = (self.0, other.0);
        while a != 0 && b != 0 {
            let (da, db) = (a.trailing_zeros(), b.trailing_zeros());
            if da != db {
                return da.cmp(&db);
            }
            a &= a - 1;
            b &= b - 1;
        }
        // One sequence exhausted: the prefix sorts first.
        (a != 0).cmp(&(b != 0))
    }

    /// Total number of non-empty subspaces of a `d`-dimensional space.
    pub fn lattice_size(d: usize) -> u64 {
        assert!(d <= MAX_DIM);
        if d == 0 {
            0
        } else {
            (1u64 << d) - 1
        }
    }
}

impl fmt::Debug for Subspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Subspace{self}")
    }
}

/// Displays 1-based, matching the paper: `[1, 3]`.
impl fmt::Display for Subspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", d + 1)?;
        }
        write!(f, "]")
    }
}

/// Parses the paper's 1-based notation, e.g. `[1,3]` or `1,3`.
impl FromStr for Subspace {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        let inner = s.trim().trim_start_matches('[').trim_end_matches(']');
        if inner.trim().is_empty() {
            return Ok(Subspace::empty());
        }
        let mut mask = 0u64;
        for part in inner.split(',') {
            let v: usize = part
                .trim()
                .parse()
                .map_err(|_| format!("invalid dimension {part:?} in subspace {s:?}"))?;
            if v == 0 || v > MAX_DIM {
                return Err(format!("dimension {v} out of range 1..={MAX_DIM}"));
            }
            mask |= 1u64 << (v - 1);
        }
        Ok(Subspace(mask))
    }
}

/// Iterator over the dimensions of a subspace.
#[derive(Clone)]
pub struct DimIter(u64);

impl Iterator for DimIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let d = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(d)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DimIter {}

/// Iterator over all non-empty submasks of a mask, descending.
pub struct SubsetIter {
    mask: u64,
    sub: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = Subspace;

    fn next(&mut self) -> Option<Subspace> {
        if self.done {
            return None;
        }
        let cur = self.sub;
        if cur == 0 {
            self.done = true;
            return None;
        }
        self.sub = (self.sub - 1) & self.mask;
        if self.sub == 0 {
            self.done = true;
        }
        Some(Subspace(cur))
    }
}

/// Iterator over all masks with a fixed popcount (Gosper's hack).
pub struct CardinalityIter {
    cur: u64,
    limit: u64,
    done: bool,
}

impl Iterator for CardinalityIter {
    type Item = Subspace;

    fn next(&mut self) -> Option<Subspace> {
        if self.done || self.cur > self.limit {
            self.done = true;
            return None;
        }
        let out = Subspace(self.cur);
        // Gosper's hack: next integer with the same popcount.
        let c = self.cur;
        let lowest = c & c.wrapping_neg();
        let ripple = c + lowest;
        if lowest == 0 || ripple == 0 {
            self.done = true;
        } else {
            self.cur = ripple | (((c ^ ripple) >> 2) / lowest);
            if self.cur > self.limit {
                self.done = true;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_empty() {
        assert_eq!(Subspace::empty().dim(), 0);
        assert!(Subspace::empty().is_empty());
        assert_eq!(Subspace::full(4).mask(), 0b1111);
        assert_eq!(Subspace::full(4).dim(), 4);
        assert_eq!(Subspace::full(0), Subspace::empty());
        assert_eq!(Subspace::full(63).dim(), 63);
    }

    #[test]
    fn from_dims_roundtrip() {
        let s = Subspace::from_dims(&[0, 2]);
        assert_eq!(s.dim_vec(), vec![0, 2]);
        assert!(s.contains_dim(0));
        assert!(!s.contains_dim(1));
        assert!(s.contains_dim(2));
        assert!(!s.contains_dim(63));
    }

    #[test]
    fn display_is_one_based_like_the_paper() {
        // The paper writes the subspace over dimensions {1,3} as [1,3].
        let s = Subspace::from_dims(&[0, 2]);
        assert_eq!(s.to_string(), "[1,3]");
        assert_eq!(Subspace::empty().to_string(), "[]");
    }

    #[test]
    fn parse_one_based() {
        let s: Subspace = "[1,3]".parse().unwrap();
        assert_eq!(s, Subspace::from_dims(&[0, 2]));
        let s2: Subspace = " 2 , 4 ".parse().unwrap();
        assert_eq!(s2, Subspace::from_dims(&[1, 3]));
        assert_eq!("[]".parse::<Subspace>().unwrap(), Subspace::empty());
        assert!("[0]".parse::<Subspace>().is_err());
        assert!("[x]".parse::<Subspace>().is_err());
        assert!("[64]".parse::<Subspace>().is_err());
    }

    #[test]
    fn subset_superset_relations() {
        let s13 = Subspace::from_dims(&[0, 2]);
        let s123 = Subspace::from_dims(&[0, 1, 2]);
        assert!(s13.is_subset_of(s123));
        assert!(s13.is_strict_subset_of(s123));
        assert!(s123.is_superset_of(s13));
        assert!(!s123.is_subset_of(s13));
        assert!(s13.is_subset_of(s13));
        assert!(!s13.is_strict_subset_of(s13));
    }

    #[test]
    fn set_algebra() {
        let a = Subspace::from_dims(&[0, 1]);
        let b = Subspace::from_dims(&[1, 2]);
        assert_eq!(a.union(b), Subspace::from_dims(&[0, 1, 2]));
        assert_eq!(a.intersect(b), Subspace::from_dims(&[1]));
        assert_eq!(a.difference(b), Subspace::from_dims(&[0]));
        assert_eq!(a.complement(4), Subspace::from_dims(&[2, 3]));
        assert_eq!(a.with_dim(3), Subspace::from_dims(&[0, 1, 3]));
        assert_eq!(a.without_dim(0), Subspace::from_dims(&[1]));
    }

    #[test]
    fn subsets_enumeration_is_complete() {
        let s = Subspace::from_dims(&[0, 2, 3]);
        let subs: Vec<Subspace> = s.subsets().collect();
        assert_eq!(subs.len(), 7); // 2^3 - 1 non-empty subsets
        for sub in &subs {
            assert!(sub.is_subset_of(s));
            assert!(!sub.is_empty());
        }
        // All distinct.
        let mut masks: Vec<u64> = subs.iter().map(|s| s.mask()).collect();
        masks.sort_unstable();
        masks.dedup();
        assert_eq!(masks.len(), 7);
    }

    #[test]
    fn strict_subsets_exclude_self() {
        let s = Subspace::from_dims(&[1, 4]);
        let subs: Vec<Subspace> = s.strict_subsets().collect();
        assert_eq!(subs.len(), 2);
        assert!(!subs.contains(&s));
    }

    #[test]
    fn empty_has_no_subsets() {
        assert_eq!(Subspace::empty().subsets().count(), 0);
    }

    #[test]
    fn supersets_enumeration_is_complete() {
        let s = Subspace::from_dims(&[1]);
        let sups: Vec<Subspace> = s.supersets(3).collect();
        // Supersets of {1} in 3 dims: {1},{0,1},{1,2},{0,1,2}.
        assert_eq!(sups.len(), 4);
        for sup in &sups {
            assert!(sup.is_superset_of(s));
        }
    }

    #[test]
    fn all_of_dim_matches_binomial() {
        fn binom(n: usize, k: usize) -> usize {
            if k > n {
                return 0;
            }
            let mut r = 1usize;
            for i in 0..k {
                r = r * (n - i) / (i + 1);
            }
            r
        }
        for d in 1..=8 {
            for m in 0..=d + 1 {
                let got = Subspace::all_of_dim(d, m).count();
                // m == 0 would be the empty subspace, which the
                // iterator deliberately excludes.
                let expected = if m == 0 { 0 } else { binom(d, m) };
                assert_eq!(got, expected, "d={d} m={m}");
                for s in Subspace::all_of_dim(d, m) {
                    assert_eq!(s.dim(), m);
                    assert!(s.is_subset_of(Subspace::full(d)));
                }
            }
        }
    }

    #[test]
    fn all_nonempty_counts() {
        assert_eq!(Subspace::all_nonempty(4).count(), 15);
        assert_eq!(Subspace::lattice_size(4), 15);
        assert_eq!(Subspace::lattice_size(0), 0);
        assert_eq!(Subspace::lattice_size(1), 1);
    }

    #[test]
    fn dims_iterator_is_sorted_and_exact() {
        let s = Subspace::from_dims(&[5, 1, 9]);
        let v = s.dim_vec();
        assert_eq!(v, vec![1, 5, 9]);
        assert_eq!(s.dims().len(), 3);
    }

    #[test]
    fn walk_cmp_is_trie_preorder() {
        use std::cmp::Ordering;
        // d = 3 walk order: {0},{0,1},{0,1,2},{0,2},{1},{1,2},{2}.
        let mut all: Vec<Subspace> = Subspace::all_nonempty(3).collect();
        all.sort_by(|a, b| a.walk_cmp(*b));
        let dims: Vec<Vec<usize>> = all.iter().map(|s| s.dim_vec()).collect();
        assert_eq!(
            dims,
            vec![
                vec![0],
                vec![0, 1],
                vec![0, 1, 2],
                vec![0, 2],
                vec![1],
                vec![1, 2],
                vec![2],
            ]
        );
        // Prefix sorts before its extensions; equality iff same mask.
        let a = Subspace::from_dims(&[1]);
        let b = Subspace::from_dims(&[1, 3]);
        assert_eq!(a.walk_cmp(b), Ordering::Less);
        assert_eq!(b.walk_cmp(a), Ordering::Greater);
        assert_eq!(a.walk_cmp(a), Ordering::Equal);
        // A total order: antisymmetric on a spot-check pair that mask
        // order gets "wrong" ({0,3} walks before {1,2} despite the
        // larger mask).
        let c = Subspace::from_dims(&[0, 3]);
        let d = Subspace::from_dims(&[1, 2]);
        assert!(c.mask() > d.mask());
        assert_eq!(c.walk_cmp(d), Ordering::Less);
    }

    #[test]
    fn gosper_handles_top_of_range() {
        // m == d: exactly one subspace, the full space.
        let v: Vec<Subspace> = Subspace::all_of_dim(6, 6).collect();
        assert_eq!(v, vec![Subspace::full(6)]);
    }

    #[test]
    #[should_panic]
    fn full_rejects_oversized_dim() {
        let _ = Subspace::full(64);
    }
}
