//! Basic descriptive statistics used across the workspace.
//!
//! Includes equi-depth boundary computation, which is the building
//! block of the Aggarwal–Yu baseline's φ-grid discretisation.

use crate::error::DataError;
use crate::Result;

/// Arithmetic mean; `0.0` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `0.0` for fewer than two values.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum and maximum; `None` for empty input.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    if xs.is_empty() {
        return None;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    Some((lo, hi))
}

/// Linear-interpolation quantile of `q ∈ [0,1]` on a *sorted* slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Result<f64> {
    if sorted.is_empty() {
        return Err(DataError::Empty);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(DataError::InvalidParam(format!(
            "quantile {q} outside [0,1]"
        )));
    }
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Quantile of unsorted data (copies and sorts internally).
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    quantile_sorted(&v, q)
}

/// Equi-depth bucket boundaries: splits the value range into `phi`
/// buckets each holding (as close as possible to) `n/phi` values.
///
/// Returns `phi - 1` interior cut points; bucket `j` of value `x` is
/// the number of cut points `<= x`. Ties at the boundary go to the
/// higher bucket, matching the usual equi-depth histogram convention.
pub fn equi_depth_boundaries(xs: &[f64], phi: usize) -> Result<Vec<f64>> {
    if xs.is_empty() {
        return Err(DataError::Empty);
    }
    if phi < 1 {
        return Err(DataError::InvalidParam("phi must be >= 1".into()));
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let mut cuts = Vec::with_capacity(phi.saturating_sub(1));
    for j in 1..phi {
        let q = j as f64 / phi as f64;
        cuts.push(quantile_sorted(&v, q)?);
    }
    Ok(cuts)
}

/// Bucket index of `x` given boundaries from [`equi_depth_boundaries`].
/// Result is in `0..=cuts.len()`.
pub fn bucket_of(x: f64, cuts: &[f64]) -> usize {
    // Number of cut points strictly below-or-equal — binary search.
    match cuts.binary_search_by(|c| c.partial_cmp(&x).expect("finite")) {
        Ok(mut i) => {
            // Ties go up: skip equal cut points.
            while i < cuts.len() && cuts[i] <= x {
                i += 1;
            }
            i
        }
        Err(i) => i,
    }
}

/// Summary of one column: `(mean, std, min, max)`.
pub fn column_summary(xs: &[f64]) -> Option<(f64, f64, f64, f64)> {
    let (lo, hi) = min_max(xs)?;
    Some((mean(xs), std_dev(xs), lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_var_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn min_max_works() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), Some((-1.0, 3.0)));
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 5.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 3.0);
        assert_eq!(quantile(&xs, 0.25).unwrap(), 2.0);
        // Interpolation between ranks.
        let ys = [0.0, 10.0];
        assert_eq!(quantile(&ys, 0.3).unwrap(), 3.0);
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&xs, 1.5).is_err());
        assert_eq!(quantile(&[7.0], 0.9).unwrap(), 7.0);
    }

    #[test]
    fn equi_depth_uniform() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let cuts = equi_depth_boundaries(&xs, 4).unwrap();
        assert_eq!(cuts.len(), 3);
        // Buckets should each receive ~25 values.
        let mut counts = [0usize; 4];
        for &x in &xs {
            counts[bucket_of(x, &cuts)] += 1;
        }
        for c in counts {
            assert!((20..=30).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn equi_depth_errors() {
        assert!(equi_depth_boundaries(&[], 3).is_err());
        assert!(equi_depth_boundaries(&[1.0], 0).is_err());
        assert_eq!(equi_depth_boundaries(&[1.0, 2.0], 1).unwrap().len(), 0);
    }

    #[test]
    fn bucket_of_edges() {
        let cuts = [1.0, 2.0, 3.0];
        assert_eq!(bucket_of(0.5, &cuts), 0);
        assert_eq!(bucket_of(1.0, &cuts), 1); // tie goes up
        assert_eq!(bucket_of(2.5, &cuts), 2);
        assert_eq!(bucket_of(9.0, &cuts), 3);
        assert_eq!(bucket_of(5.0, &[]), 0);
    }

    #[test]
    fn bucket_of_repeated_cuts() {
        // Degenerate boundaries from skewed data collapse onto one value.
        let cuts = [2.0, 2.0, 2.0];
        assert_eq!(bucket_of(1.0, &cuts), 0);
        assert_eq!(bucket_of(2.0, &cuts), 3);
        assert_eq!(bucket_of(3.0, &cuts), 3);
    }

    #[test]
    fn summary() {
        let (m, s, lo, hi) = column_summary(&[1.0, 3.0]).unwrap();
        assert_eq!(m, 2.0);
        assert_eq!(lo, 1.0);
        assert_eq!(hi, 3.0);
        assert!(s > 0.0);
        assert!(column_summary(&[]).is_none());
    }
}
