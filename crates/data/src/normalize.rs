//! Per-column dataset normalisation.
//!
//! OD compares distance sums against one global threshold `T`, so
//! columns on wildly different scales would let one dimension dominate
//! every subspace. The paper does not discuss normalisation explicitly
//! but any distance-threshold formulation assumes comparable scales;
//! both transforms here are standard preprocessing for it.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::stats;
use crate::Result;

/// Which normalisation to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NormKind {
    /// Rescale each column to `[0, 1]`.
    MinMax,
    /// Centre each column to mean 0 and standard deviation 1.
    ZScore,
}

/// A fitted per-column affine transform `x' = (x - shift) / scale`.
#[derive(Clone, Debug, PartialEq)]
pub struct Normalizer {
    kind: NormKind,
    shift: Vec<f64>,
    scale: Vec<f64>,
}

impl Normalizer {
    /// Fits the transform on a dataset.
    pub fn fit(ds: &Dataset, kind: NormKind) -> Result<Self> {
        if ds.is_empty() {
            return Err(DataError::Empty);
        }
        let d = ds.dim();
        let mut shift = Vec::with_capacity(d);
        let mut scale = Vec::with_capacity(d);
        for c in 0..d {
            let col = ds.column_vec(c);
            match kind {
                NormKind::MinMax => {
                    let (lo, hi) = stats::min_max(&col).expect("non-empty");
                    shift.push(lo);
                    let span = hi - lo;
                    scale.push(if span > 0.0 { span } else { 1.0 });
                }
                NormKind::ZScore => {
                    shift.push(stats::mean(&col));
                    let sd = stats::std_dev(&col);
                    scale.push(if sd > 0.0 { sd } else { 1.0 });
                }
            }
        }
        Ok(Normalizer { kind, shift, scale })
    }

    /// The transform kind.
    pub fn kind(&self) -> NormKind {
        self.kind
    }

    /// Dimensionality the transform was fitted on.
    pub fn dim(&self) -> usize {
        self.shift.len()
    }

    /// Applies the transform to a dataset, producing a new one.
    pub fn apply(&self, ds: &Dataset) -> Result<Dataset> {
        if ds.dim() != self.dim() {
            return Err(DataError::Shape {
                expected: self.dim(),
                got: ds.dim(),
            });
        }
        let mut flat = Vec::with_capacity(ds.len() * ds.dim());
        for (_, row) in ds.iter() {
            for (c, &v) in row.iter().enumerate() {
                flat.push((v - self.shift[c]) / self.scale[c]);
            }
        }
        let mut out = Dataset::from_flat(flat, ds.dim())?;
        if let Some(names) = ds.names() {
            out = out.with_names(names.to_vec())?;
        }
        Ok(out)
    }

    /// Transforms a single row (e.g. an external query point).
    pub fn apply_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        if row.len() != self.dim() {
            return Err(DataError::Shape {
                expected: self.dim(),
                got: row.len(),
            });
        }
        Ok(row
            .iter()
            .enumerate()
            .map(|(c, &v)| (v - self.shift[c]) / self.scale[c])
            .collect())
    }

    /// Inverts the transform on a single row.
    pub fn invert_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        if row.len() != self.dim() {
            return Err(DataError::Shape {
                expected: self.dim(),
                got: row.len(),
            });
        }
        Ok(row
            .iter()
            .enumerate()
            .map(|(c, &v)| v * self.scale[c] + self.shift[c])
            .collect())
    }
}

/// Convenience: fit-and-apply in one call, returning both the
/// transformed dataset and the fitted transform (needed to map query
/// points into the same coordinate system).
pub fn normalize(ds: &Dataset, kind: NormKind) -> Result<(Dataset, Normalizer)> {
    let norm = Normalizer::fit(ds, kind)?;
    let out = norm.apply(ds)?;
    Ok((out, norm))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::from_rows(&[vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]]).unwrap()
    }

    #[test]
    fn min_max_maps_to_unit_interval() {
        let (out, _) = normalize(&ds(), NormKind::MinMax).unwrap();
        for c in 0..out.dim() {
            let col = out.column_vec(c);
            let (lo, hi) = stats::min_max(&col).unwrap();
            assert!((lo - 0.0).abs() < 1e-12);
            assert!((hi - 1.0).abs() < 1e-12);
        }
        assert_eq!(out.get(1, 0), 0.5);
    }

    #[test]
    fn zscore_centres_columns() {
        let (out, _) = normalize(&ds(), NormKind::ZScore).unwrap();
        for c in 0..out.dim() {
            let col = out.column_vec(c);
            assert!(stats::mean(&col).abs() < 1e-12);
            assert!((stats::std_dev(&col) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let flat = Dataset::from_rows(&[vec![7.0, 1.0], vec![7.0, 2.0]]).unwrap();
        let (out, _) = normalize(&flat, NormKind::MinMax).unwrap();
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(1, 0), 0.0);
        let (out2, _) = normalize(&flat, NormKind::ZScore).unwrap();
        assert_eq!(out2.get(0, 0), 0.0);
    }

    #[test]
    fn apply_row_matches_dataset_transform() {
        let (out, norm) = normalize(&ds(), NormKind::MinMax).unwrap();
        let r = norm.apply_row(&[5.0, 20.0]).unwrap();
        assert_eq!(&r[..], out.row(1));
    }

    #[test]
    fn invert_roundtrips() {
        let (_, norm) = normalize(&ds(), NormKind::ZScore).unwrap();
        let original = [3.0, 17.0];
        let fwd = norm.apply_row(&original).unwrap();
        let back = norm.invert_row(&fwd).unwrap();
        for (a, b) in original.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn shape_errors() {
        let (_, norm) = normalize(&ds(), NormKind::MinMax).unwrap();
        assert!(norm.apply_row(&[1.0]).is_err());
        let other = Dataset::from_rows(&[vec![1.0]]).unwrap();
        assert!(norm.apply(&other).is_err());
        assert!(Normalizer::fit(&Dataset::empty(), NormKind::MinMax).is_err());
    }

    #[test]
    fn names_survive() {
        let named = ds().with_names(vec!["a".into(), "b".into()]).unwrap();
        let (out, _) = normalize(&named, NormKind::MinMax).unwrap();
        assert_eq!(out.names().unwrap()[1], "b");
    }
}
