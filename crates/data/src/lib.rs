//! # hos-data
//!
//! Foundational data layer for the HOS-Miner reproduction
//! (Zhang, Lou, Ling, Wang — VLDB 2004).
//!
//! This crate provides everything the search layers build on:
//!
//! * [`Subspace`] — an axis-parallel subspace of `R^d` encoded as a
//!   `u64` bitmask, with lattice navigation helpers (subsets, supersets,
//!   fixed-cardinality enumeration).
//! * [`Dataset`] — a dense, row-major `n x d` matrix of `f64` with
//!   optional column names and validation.
//! * [`Metric`] — the `L1`/`L2`/`L∞`/`Lp` family, all of which satisfy
//!   the *projection monotonicity* that the paper's Property 1/2 rely
//!   on: `dist_{s2}(a,b) <= dist_{s1}(a,b)` whenever `s2 ⊆ s1`.
//! * [`normalize`] — min–max and z-score dataset transforms.
//! * [`csv`] — dependency-free CSV reading/writing.
//! * [`stats`] — means, variances, quantiles and equi-depth boundaries
//!   (the latter feed the Aggarwal–Yu baseline's φ-grid).
//! * [`synth`] — synthetic workload generators, including planted
//!   subspace outliers with verifiable ground truth.
//! * [`table`] — small plain-text / CSV table rendering used by the
//!   experiment harness and examples.
//!
//! The crate is deliberately free of heavyweight dependencies; only
//! `rand` (generation) and `serde` (result serialisation in the
//! harness) are used.

pub mod csv;
pub mod dataset;
pub mod error;
pub mod metric;
pub mod normalize;
pub mod stats;
pub mod subspace;
pub mod synth;
pub mod table;

pub use dataset::{Dataset, DatasetBuilder, DatasetShard, PointId, QuantizedColumns};
pub use error::DataError;
pub use metric::Metric;
pub use subspace::Subspace;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
