//! Dense, row-major dataset storage.
//!
//! HOS-Miner evaluates distances in arbitrary axis-parallel projections
//! of the data, so the representation favours fast row access: one
//! contiguous `Vec<f64>` of `n * d` values. Columns are secondary
//! (needed only for normalisation and equi-depth statistics) and are
//! accessed through strided iterators.
//!
//! # Mutation model (streaming)
//!
//! The streaming path mutates a dataset in place: [`Dataset::push_row`]
//! appends (ids only ever grow), and [`Dataset::remove_row`]
//! **tombstones** a row — the data stays where it is so every other
//! [`PointId`] remains stable, but the row no longer participates in
//! [`Dataset::iter`], [`Dataset::live_len`] or anything built on them.
//! [`Dataset::compact`] reclaims the space by dropping tombstoned rows
//! and renumbering, returning the id map. Indexed accessors
//! ([`Dataset::row`], [`Dataset::get`], [`Dataset::column`]) address
//! the *physical* matrix including tombstoned rows; callers that care
//! filter with [`Dataset::is_live`].

use crate::error::DataError;
use crate::subspace::{Subspace, MAX_DIM};
use crate::Result;

/// Identifier of a point: its row index in the [`Dataset`].
pub type PointId = usize;

/// The quantized companion column set produced by
/// [`Dataset::to_column_major_f32`]: half-width column-major values
/// plus the per-column magnitude scales that admission kernels turn
/// into conservative slack.
pub struct QuantizedColumns {
    /// `cols[j * n + i]` = value of point `i` in dimension `j`,
    /// rounded to the nearest `f32` (tombstoned rows included
    /// positionally, like [`Dataset::to_column_major`]).
    pub cols: Vec<f32>,
    /// `scale[j]` = max `|v|` over column `j` in exact `f64` — the
    /// magnitude that bounds every rounding error a kernel's `f32`
    /// arithmetic over the column can commit.
    pub scale: Vec<f64>,
}

/// A dense `n x d` matrix of `f64`, row-major, with optional
/// tombstones (see the module docs' mutation model).
#[derive(Clone, Debug)]
pub struct Dataset {
    n: usize,
    d: usize,
    data: Vec<f64>,
    names: Option<Vec<String>>,
    /// Tombstone flags; empty means "all rows live" (the common,
    /// never-mutated case allocates nothing).
    dead: Vec<bool>,
    dead_count: usize,
}

impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        // Liveness compares semantically: an empty `dead` vec equals
        // an all-false one.
        self.n == other.n
            && self.d == other.d
            && self.data == other.data
            && self.names == other.names
            && self.dead_count == other.dead_count
            && (0..self.n).all(|i| self.is_live(i) == other.is_live(i))
    }
}

impl Dataset {
    /// Creates a dataset from a flat row-major buffer.
    ///
    /// # Errors
    /// * [`DataError::Shape`] if `data.len()` is not a multiple of `d`
    ///   or `d == 0` with non-empty data.
    /// * [`DataError::DimTooLarge`] if `d` exceeds [`MAX_DIM`].
    /// * [`DataError::NonFinite`] if any value is NaN or infinite.
    pub fn from_flat(data: Vec<f64>, d: usize) -> Result<Self> {
        if d > MAX_DIM {
            return Err(DataError::DimTooLarge {
                dim: d,
                max: MAX_DIM,
            });
        }
        if d == 0 {
            if data.is_empty() {
                return Ok(Dataset {
                    n: 0,
                    d: 0,
                    data,
                    names: None,
                    dead: Vec::new(),
                    dead_count: 0,
                });
            }
            return Err(DataError::Shape {
                expected: 0,
                got: data.len(),
            });
        }
        if !data.len().is_multiple_of(d) {
            return Err(DataError::Shape {
                expected: d,
                got: data.len() % d,
            });
        }
        let n = data.len() / d;
        for (idx, v) in data.iter().enumerate() {
            if !v.is_finite() {
                return Err(DataError::NonFinite {
                    row: idx / d,
                    col: idx % d,
                });
            }
        }
        Ok(Dataset {
            n,
            d,
            data,
            names: None,
            dead: Vec::new(),
            dead_count: 0,
        })
    }

    /// Creates a dataset from rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let mut b = DatasetBuilder::new();
        for r in rows {
            b.push_row(r)?;
        }
        b.build()
    }

    /// Number of rows in the physical matrix — the size of the
    /// [`PointId`] space, **including** tombstoned rows. Live-only
    /// counting is [`Dataset::live_len`].
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dataset holds no rows at all (live or tombstoned).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of live (non-tombstoned) points.
    #[inline]
    pub fn live_len(&self) -> usize {
        self.n - self.dead_count
    }

    /// Number of tombstoned rows awaiting [`Dataset::compact`].
    #[inline]
    pub fn dead_count(&self) -> usize {
        self.dead_count
    }

    /// Whether row `i` exists and is not tombstoned.
    #[inline]
    pub fn is_live(&self, i: PointId) -> bool {
        i < self.n && !self.dead.get(i).copied().unwrap_or(false)
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The full space over this dataset's dimensions.
    #[inline]
    pub fn full_space(&self) -> Subspace {
        Subspace::full(self.d)
    }

    /// Borrow row `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row(&self, i: PointId) -> &[f64] {
        &self.data[i * self.d..(i + 1) * self.d]
    }

    /// Checked row access.
    pub fn try_row(&self, i: PointId) -> Result<&[f64]> {
        if i >= self.n {
            return Err(DataError::OutOfBounds {
                what: "row",
                index: i,
                len: self.n,
            });
        }
        Ok(self.row(i))
    }

    /// Value at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.n && col < self.d);
        self.data[row * self.d + col]
    }

    /// Iterates `(id, row)` pairs over the **live** rows (tombstoned
    /// rows are skipped; ids keep their physical values, so the
    /// sequence can have gaps). Empty for a 0-dimensional dataset.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> {
        // chunks_exact panics on 0; a 0-d dataset is necessarily empty.
        self.data
            .chunks_exact(self.d.max(1))
            .enumerate()
            .filter(move |(i, _)| self.is_live(*i))
    }

    /// Iterates the ids of the live rows, ascending.
    pub fn live_ids(&self) -> impl Iterator<Item = PointId> + '_ {
        (0..self.n).filter(move |&i| self.is_live(i))
    }

    /// Iterates the values of one column.
    pub fn column(&self, col: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(
            col < self.d,
            "column {col} out of bounds for dim {}",
            self.d
        );
        self.data.iter().skip(col).step_by(self.d).copied()
    }

    /// Copies a column into a `Vec`.
    pub fn column_vec(&self, col: usize) -> Vec<f64> {
        self.column(col).collect()
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// A column-major (structure-of-arrays) snapshot of the physical
    /// matrix: `d` contiguous blocks of `n` values, block `j` holding
    /// column `j` in row order (tombstoned rows included — callers
    /// filter with [`Dataset::is_live`]). Kernels that stream one
    /// dimension across many rows (the blocked all-points OD scan)
    /// read this layout sequentially instead of striding the
    /// row-major buffer by `d`.
    pub fn to_column_major(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.n * self.d];
        for (j, slot) in out.chunks_exact_mut(self.n.max(1)).enumerate() {
            for (i, v) in slot.iter_mut().enumerate() {
                *v = self.data[i * self.d + j];
            }
        }
        out
    }

    /// A quantized `f32` companion of [`Dataset::to_column_major`]:
    /// the same column-major layout, each value rounded to the nearest
    /// `f32`, plus one per-column magnitude scale. Admission kernels
    /// stream these half-width columns to compute *lower bounds* on
    /// exact `f64` pre-distances; the conservative part is the scale —
    /// `scale[j]` bounds `|v|` over column `j`, so a kernel can
    /// subtract `scale[j] * eps` per term and provably stay below the
    /// exact value despite the rounding in the narrowing conversion
    /// and the `f32` arithmetic that follows.
    pub fn to_column_major_f32(&self) -> QuantizedColumns {
        let mut cols = vec![0.0f32; self.n * self.d];
        let mut scale = vec![0.0f64; self.d];
        for (j, slot) in cols.chunks_exact_mut(self.n.max(1)).enumerate() {
            let mut m = 0.0f64;
            for (i, v) in slot.iter_mut().enumerate() {
                let x = self.data[i * self.d + j];
                m = m.max(x.abs());
                *v = x as f32;
            }
            scale[j] = m;
        }
        QuantizedColumns { cols, scale }
    }

    /// Optional column names.
    pub fn names(&self) -> Option<&[String]> {
        self.names.as_deref()
    }

    /// Attaches column names (must match dimensionality).
    pub fn with_names(mut self, names: Vec<String>) -> Result<Self> {
        if names.len() != self.d {
            return Err(DataError::Shape {
                expected: self.d,
                got: names.len(),
            });
        }
        self.names = Some(names);
        Ok(self)
    }

    /// Projects the dataset onto a subspace, producing a smaller,
    /// `|s|`-dimensional dataset with rows in the same order.
    ///
    /// This is mostly useful for exporting views (e.g. the Figure 1
    /// scatter plots); the search code never materialises projections,
    /// it evaluates metrics directly through subspace masks.
    pub fn project(&self, s: Subspace) -> Result<Dataset> {
        let dims = s.dim_vec();
        if let Some(&max) = dims.last() {
            if max >= self.d {
                return Err(DataError::OutOfBounds {
                    what: "column",
                    index: max,
                    len: self.d,
                });
            }
        }
        let mut data = Vec::with_capacity(self.n * dims.len());
        for i in 0..self.n {
            let row = self.row(i);
            for &c in &dims {
                data.push(row[c]);
            }
        }
        let names = self
            .names
            .as_ref()
            .map(|ns| dims.iter().map(|&c| ns[c].clone()).collect::<Vec<_>>());
        let mut out = Dataset::from_flat(data, dims.len())?;
        if let Some(ns) = names {
            out = out.with_names(ns)?;
        }
        // The projection keeps the physical row layout, so tombstones
        // carry over positionally.
        if self.dead_count > 0 {
            out.dead = self.dead.clone();
            out.dead_count = self.dead_count;
        }
        Ok(out)
    }

    /// Appends a row, consuming and returning the dataset.
    pub fn push_row(&mut self, row: &[f64]) -> Result<PointId> {
        if self.n == 0 && self.d == 0 {
            // First row fixes the dimensionality.
            if row.is_empty() || row.len() > MAX_DIM {
                return Err(DataError::DimTooLarge {
                    dim: row.len(),
                    max: MAX_DIM,
                });
            }
            self.d = row.len();
        }
        if row.len() != self.d {
            return Err(DataError::Shape {
                expected: self.d,
                got: row.len(),
            });
        }
        for (c, v) in row.iter().enumerate() {
            if !v.is_finite() {
                return Err(DataError::NonFinite {
                    row: self.n,
                    col: c,
                });
            }
        }
        self.data.extend_from_slice(row);
        self.n += 1;
        if !self.dead.is_empty() {
            self.dead.push(false);
        }
        Ok(self.n - 1)
    }

    /// Tombstones row `i`: the data stays in place (every other
    /// [`PointId`] remains valid) but the row stops participating in
    /// [`Dataset::iter`] and [`Dataset::live_len`].
    ///
    /// # Errors
    /// * [`DataError::OutOfBounds`] if `i >= len()`.
    /// * [`DataError::InvalidParam`] if row `i` is already tombstoned.
    pub fn remove_row(&mut self, i: PointId) -> Result<()> {
        if i >= self.n {
            return Err(DataError::OutOfBounds {
                what: "row",
                index: i,
                len: self.n,
            });
        }
        if !self.is_live(i) {
            return Err(DataError::InvalidParam(format!(
                "row {i} is already removed"
            )));
        }
        if self.dead.is_empty() {
            self.dead = vec![false; self.n];
        }
        self.dead[i] = true;
        self.dead_count += 1;
        Ok(())
    }

    /// Drops every tombstoned row, renumbering the survivors `0..m`
    /// in their original order. Returns the id map: entry `j` is the
    /// **old** id of the row now numbered `j`, ascending (so the map
    /// is strictly increasing and order-preserving).
    pub fn compact(&mut self) -> Vec<PointId> {
        if self.dead_count == 0 {
            self.dead = Vec::new();
            return (0..self.n).collect();
        }
        let mut map = Vec::with_capacity(self.live_len());
        let mut write = 0usize;
        for i in 0..self.n {
            if !self.is_live(i) {
                continue;
            }
            if write != i {
                self.data
                    .copy_within(i * self.d..(i + 1) * self.d, write * self.d);
            }
            map.push(i);
            write += 1;
        }
        self.n = write;
        self.data.truncate(write * self.d);
        self.dead = Vec::new();
        self.dead_count = 0;
        map
    }

    /// Creates an empty dataset whose dimensionality is fixed by the
    /// first pushed row.
    pub fn empty() -> Self {
        Dataset {
            n: 0,
            d: 0,
            data: Vec::new(),
            names: None,
            dead: Vec::new(),
            dead_count: 0,
        }
    }

    /// Partitions the rows into `shards` contiguous, balanced slices,
    /// preserving global [`PointId`]s: shard `i` holds the rows
    /// `[offset_i, offset_i + len_i)` of `self` in order, so global id
    /// `= offset + local id` and every row appears in exactly one
    /// shard. The first `n % shards` shards hold one extra row.
    ///
    /// The partitioning is a pure function of `(n, shards)` —
    /// deterministic across runs and machines — which is what lets a
    /// sharded engine reproduce unsharded results bit for bit.
    ///
    /// `shards` is clamped to `1..=n` (at least one shard, never an
    /// empty shard), except that an empty dataset yields one empty
    /// shard.
    pub fn shard(&self, shards: usize) -> Vec<DatasetShard> {
        let shards = shards.clamp(1, self.n.max(1));
        let base = self.n / shards;
        let extra = self.n % shards;
        let mut out = Vec::with_capacity(shards);
        let mut offset = 0usize;
        for i in 0..shards {
            let len = base + usize::from(i < extra);
            let mut dataset = Dataset::from_flat(
                self.data[offset * self.d..(offset + len) * self.d].to_vec(),
                self.d,
            )
            .expect("shard of a valid dataset is valid");
            if let Some(names) = &self.names {
                dataset = dataset
                    .with_names(names.clone())
                    .expect("names carry over to shards");
            }
            if self.dead_count > 0 {
                for local in 0..len {
                    if !self.is_live(offset + local) {
                        dataset
                            .remove_row(local)
                            .expect("tombstone carries over to its shard");
                    }
                }
            }
            out.push(DatasetShard { dataset, offset });
            offset += len;
        }
        debug_assert_eq!(offset, self.n);
        out
    }
}

/// One shard of a [`Dataset`]: a contiguous row slice plus the global
/// [`PointId`] of its first row (see [`Dataset::shard`]).
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetShard {
    /// The shard's rows, local ids `0..dataset.len()`.
    pub dataset: Dataset,
    /// Global id of local row `0`; global id = `offset` + local id.
    pub offset: PointId,
}

impl DatasetShard {
    /// Translates a global [`PointId`] to this shard's local id, if
    /// the point lives here.
    #[inline]
    pub fn local_id(&self, global: PointId) -> Option<PointId> {
        global
            .checked_sub(self.offset)
            .filter(|&local| local < self.dataset.len())
    }

    /// Translates a local row id back to its global [`PointId`].
    #[inline]
    pub fn global_id(&self, local: PointId) -> PointId {
        debug_assert!(local < self.dataset.len());
        self.offset + local
    }
}

/// Incremental dataset construction with shape validation.
#[derive(Default)]
pub struct DatasetBuilder {
    d: Option<usize>,
    data: Vec<f64>,
    names: Option<Vec<String>>,
    rows: usize,
}

impl DatasetBuilder {
    /// New, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-declares the dimensionality (otherwise fixed by first row).
    pub fn with_dim(mut self, d: usize) -> Self {
        self.d = Some(d);
        self
    }

    /// Sets column names.
    pub fn with_names(mut self, names: Vec<String>) -> Self {
        self.names = Some(names);
        self
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        let d = *self.d.get_or_insert(row.len());
        if row.len() != d {
            return Err(DataError::Shape {
                expected: d,
                got: row.len(),
            });
        }
        if d == 0 || d > MAX_DIM {
            return Err(DataError::DimTooLarge {
                dim: d,
                max: MAX_DIM,
            });
        }
        for (c, v) in row.iter().enumerate() {
            if !v.is_finite() {
                return Err(DataError::NonFinite {
                    row: self.rows,
                    col: c,
                });
            }
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Finalises the dataset.
    pub fn build(self) -> Result<Dataset> {
        let d = self.d.unwrap_or(0);
        let mut ds = Dataset::from_flat(self.data, d)?;
        if let Some(names) = self.names {
            ds = ds.with_names(names)?;
        }
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap()
    }

    #[test]
    fn basic_shape() {
        let ds = small();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 3);
        assert!(!ds.is_empty());
        assert_eq!(ds.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(ds.get(2, 0), 7.0);
        assert_eq!(ds.full_space(), Subspace::full(3));
    }

    #[test]
    fn from_flat_validates() {
        assert!(Dataset::from_flat(vec![1.0, 2.0, 3.0], 2).is_err());
        assert!(Dataset::from_flat(vec![1.0, f64::NAN], 2).is_err());
        assert!(Dataset::from_flat(vec![1.0, f64::INFINITY], 2).is_err());
        assert!(Dataset::from_flat(vec![], 0).unwrap().is_empty());
        assert!(Dataset::from_flat(vec![1.0], 0).is_err());
        assert!(Dataset::from_flat(vec![0.0; 64], 64).is_err());
    }

    #[test]
    fn column_access() {
        let ds = small();
        assert_eq!(ds.column_vec(0), vec![1.0, 4.0, 7.0]);
        assert_eq!(ds.column_vec(2), vec![3.0, 6.0, 9.0]);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let ds = small();
        let ids: Vec<PointId> = ds.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn projection() {
        let ds = small();
        let p = ds.project(Subspace::from_dims(&[0, 2])).unwrap();
        assert_eq!(p.dim(), 2);
        assert_eq!(p.row(0), &[1.0, 3.0]);
        assert_eq!(p.row(2), &[7.0, 9.0]);
        assert!(ds.project(Subspace::from_dims(&[5])).is_err());
    }

    #[test]
    fn projection_preserves_names() {
        let ds = small()
            .with_names(vec!["a".into(), "b".into(), "c".into()])
            .unwrap();
        let p = ds.project(Subspace::from_dims(&[2])).unwrap();
        assert_eq!(p.names().unwrap(), &["c".to_string()]);
    }

    #[test]
    fn builder_fixes_dim_from_first_row() {
        let mut b = DatasetBuilder::new();
        b.push_row(&[1.0, 2.0]).unwrap();
        assert!(b.push_row(&[3.0]).is_err());
        b.push_row(&[3.0, 4.0]).unwrap();
        let ds = b.build().unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dim(), 2);
    }

    #[test]
    fn builder_rejects_nonfinite() {
        let mut b = DatasetBuilder::new();
        assert!(b.push_row(&[f64::NAN]).is_err());
    }

    #[test]
    fn names_must_match_dim() {
        assert!(small().with_names(vec!["x".into()]).is_err());
    }

    #[test]
    fn push_row_on_dataset() {
        let mut ds = Dataset::empty();
        let id0 = ds.push_row(&[1.0, 2.0]).unwrap();
        let id1 = ds.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!((id0, id1), (0, 1));
        assert_eq!(ds.len(), 2);
        assert!(ds.push_row(&[1.0]).is_err());
    }

    #[test]
    fn try_row_bounds() {
        let ds = small();
        assert!(ds.try_row(2).is_ok());
        assert!(ds.try_row(3).is_err());
    }

    #[test]
    fn shard_partitions_rows_contiguously_with_global_ids() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, -(i as f64)]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        for shards in 1..=10 {
            let parts = ds.shard(shards);
            assert_eq!(parts.len(), shards);
            // Every global row appears exactly once, in order, and the
            // id arithmetic round-trips.
            let mut seen = 0usize;
            for part in &parts {
                assert_eq!(part.offset, seen);
                assert!(!part.dataset.is_empty(), "empty shard at {shards}");
                for local in 0..part.dataset.len() {
                    let global = part.global_id(local);
                    assert_eq!(part.dataset.row(local), ds.row(global));
                    assert_eq!(part.local_id(global), Some(local));
                    seen += 1;
                }
            }
            assert_eq!(seen, ds.len());
            // Balance: sizes differ by at most one.
            let sizes: Vec<usize> = parts.iter().map(|p| p.dataset.len()).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "unbalanced shards {sizes:?}");
        }
    }

    #[test]
    fn shard_clamps_count_and_handles_edges() {
        let ds = small();
        // More shards than rows: clamped to one row per shard.
        assert_eq!(ds.shard(99).len(), 3);
        // Zero shards: clamped to one.
        let one = ds.shard(0);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].dataset, ds);
        assert_eq!(one[0].offset, 0);
        // Empty dataset: one empty shard.
        let empty = Dataset::empty().shard(4);
        assert_eq!(empty.len(), 1);
        assert!(empty[0].dataset.is_empty());
        // Out-of-range global ids translate to None.
        let parts = ds.shard(2);
        assert_eq!(parts[1].local_id(0), None);
        assert_eq!(parts[0].local_id(2), None);
        assert_eq!(parts[1].local_id(2), Some(0));
    }

    #[test]
    fn remove_row_tombstones_without_moving_data() {
        let mut ds = small();
        assert_eq!(ds.live_len(), 3);
        ds.remove_row(1).unwrap();
        assert_eq!(ds.len(), 3, "id space unchanged");
        assert_eq!(ds.live_len(), 2);
        assert_eq!(ds.dead_count(), 1);
        assert!(!ds.is_live(1));
        assert!(ds.is_live(0) && ds.is_live(2));
        // Physical access still works; iteration skips the tombstone.
        assert_eq!(ds.row(1), &[4.0, 5.0, 6.0]);
        let ids: Vec<PointId> = ds.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(ds.live_ids().collect::<Vec<_>>(), vec![0, 2]);
        // Double-remove and out-of-bounds are typed errors.
        assert!(ds.remove_row(1).is_err());
        assert!(ds.remove_row(9).is_err());
        // Pushing after a removal keeps flags consistent.
        let id = ds.push_row(&[9.0, 9.0, 9.0]).unwrap();
        assert_eq!(id, 3);
        assert!(ds.is_live(3));
        assert_eq!(ds.live_len(), 3);
    }

    #[test]
    fn compact_renumbers_and_returns_increasing_id_map() {
        let mut ds =
            Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        ds.remove_row(0).unwrap();
        ds.remove_row(3).unwrap();
        let map = ds.compact();
        assert_eq!(map, vec![1, 2, 4]);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.live_len(), 3);
        assert_eq!(ds.dead_count(), 0);
        for (new_id, &old_id) in map.iter().enumerate() {
            assert_eq!(ds.row(new_id), &[old_id as f64]);
        }
        // Compacting a fully-live dataset is the identity map.
        assert_eq!(ds.compact(), vec![0, 1, 2]);
    }

    #[test]
    fn tombstone_equality_is_semantic() {
        let mut a = small();
        let b = small();
        assert_eq!(a, b);
        a.remove_row(2).unwrap();
        assert_ne!(a, b);
        // Remove + compact == never having had the row.
        a.compact();
        let c = Dataset::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn shard_and_project_carry_tombstones() {
        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, -(i as f64)]).collect();
        let mut ds = Dataset::from_rows(&rows).unwrap();
        ds.remove_row(2).unwrap();
        ds.remove_row(5).unwrap();
        for shards in [1, 2, 3] {
            let parts = ds.shard(shards);
            let mut live = 0;
            for part in &parts {
                for local in 0..part.dataset.len() {
                    let global = part.global_id(local);
                    assert_eq!(
                        part.dataset.is_live(local),
                        ds.is_live(global),
                        "shards={shards} global={global}"
                    );
                    live += usize::from(part.dataset.is_live(local));
                }
            }
            assert_eq!(live, ds.live_len(), "shards={shards}");
        }
        let p = ds.project(Subspace::from_dims(&[0])).unwrap();
        assert_eq!(p.live_len(), ds.live_len());
        assert!(!p.is_live(2) && !p.is_live(5));
    }

    #[test]
    fn shard_preserves_names() {
        let ds = small()
            .with_names(vec!["a".into(), "b".into(), "c".into()])
            .unwrap();
        let parts = ds.shard(2);
        for p in &parts {
            assert_eq!(p.dataset.names(), ds.names());
        }
    }
}
