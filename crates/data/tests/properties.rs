//! Property-based tests for the data layer's core invariants.
//!
//! The single most load-bearing fact in the whole system is metric
//! projection monotonicity (it justifies the paper's Property 1/2 and
//! therefore every pruning step), so it gets exercised across random
//! points, masks and metrics here.

use hos_data::metric::Metric;
use hos_data::stats;
use hos_data::subspace::Subspace;
use proptest::prelude::*;

const D: usize = 12;

fn arb_point() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000.0f64..1000.0, D)
}

fn arb_mask() -> impl Strategy<Value = u64> {
    0u64..(1u64 << D)
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![
        Just(Metric::L1),
        Just(Metric::L2),
        Just(Metric::LInf),
        (1.0f64..5.0).prop_map(Metric::Lp),
    ]
}

proptest! {
    /// dist_{s∩t} <= dist_s for any masks: projection monotonicity.
    #[test]
    fn metric_projection_monotone(a in arb_point(), b in arb_point(),
                                  m1 in arb_mask(), m2 in arb_mask(),
                                  metric in arb_metric()) {
        let s = Subspace::from_mask(m1);
        let sub = Subspace::from_mask(m1 & m2); // guaranteed subset of s
        let d_sub = metric.dist_sub(&a, &b, sub);
        let d_sup = metric.dist_sub(&a, &b, s);
        prop_assert!(d_sub <= d_sup + 1e-9,
            "metric {metric:?}: subset dist {d_sub} > superset dist {d_sup}");
    }

    /// Metric axioms on subspace distances: symmetry, identity,
    /// non-negativity, triangle inequality.
    #[test]
    fn metric_axioms(a in arb_point(), b in arb_point(), c in arb_point(),
                     m in arb_mask(), metric in arb_metric()) {
        let s = Subspace::from_mask(m);
        let ab = metric.dist_sub(&a, &b, s);
        let ba = metric.dist_sub(&b, &a, s);
        let aa = metric.dist_sub(&a, &a, s);
        let ac = metric.dist_sub(&a, &c, s);
        let cb = metric.dist_sub(&c, &b, s);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(aa.abs() < 1e-12);
        prop_assert!(ab <= ac + cb + 1e-6,
            "triangle violated: {ab} > {ac} + {cb}");
    }

    /// pre_dist_sub is a monotone transform of dist_sub.
    #[test]
    fn pre_dist_is_order_preserving(a in arb_point(), b in arb_point(), c in arb_point(),
                                    m in arb_mask(), metric in arb_metric()) {
        let s = Subspace::from_mask(m);
        let d_ab = metric.dist_sub(&a, &b, s);
        let d_ac = metric.dist_sub(&a, &c, s);
        let p_ab = metric.pre_dist_sub(&a, &b, s);
        let p_ac = metric.pre_dist_sub(&a, &c, s);
        if d_ab + 1e-9 < d_ac {
            prop_assert!(p_ab <= p_ac + 1e-9);
        }
        prop_assert!((metric.finish(p_ab) - d_ab).abs() < 1e-6);
    }

    /// Subset/superset relations and set algebra are consistent.
    #[test]
    fn subspace_algebra(m1 in arb_mask(), m2 in arb_mask()) {
        let a = Subspace::from_mask(m1);
        let b = Subspace::from_mask(m2);
        let u = a.union(b);
        let i = a.intersect(b);
        prop_assert!(a.is_subset_of(u) && b.is_subset_of(u));
        prop_assert!(i.is_subset_of(a) && i.is_subset_of(b));
        prop_assert_eq!(a.is_subset_of(b), b.is_superset_of(a));
        prop_assert_eq!(u.dim() + i.dim(), a.dim() + b.dim());
        prop_assert_eq!(a.difference(b).union(i), a);
        // Complement within D dims partitions the full space.
        let comp = a.complement(D);
        prop_assert_eq!(a.union(comp), Subspace::full(D));
        prop_assert!(a.intersect(comp).is_empty());
    }

    /// Every enumerated subset really is a subset, and the count is 2^m - 1.
    #[test]
    fn subsets_are_subsets(m in 0u64..(1u64 << 10)) {
        let s = Subspace::from_mask(m);
        let mut count = 0u64;
        for sub in s.subsets() {
            prop_assert!(sub.is_subset_of(s));
            prop_assert!(!sub.is_empty());
            count += 1;
        }
        let expected = if s.is_empty() { 0 } else { (1u64 << s.dim()) - 1 };
        prop_assert_eq!(count, expected);
    }

    /// Display/FromStr round-trips.
    #[test]
    fn subspace_display_roundtrip(m in arb_mask()) {
        let s = Subspace::from_mask(m);
        let text = s.to_string();
        let back: Subspace = text.parse().unwrap();
        prop_assert_eq!(s, back);
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantile_monotone(mut xs in prop::collection::vec(-100.0f64..100.0, 1..50),
                         q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = stats::quantile(&xs, lo).unwrap();
        let b = stats::quantile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        xs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert!(a >= xs[0] - 1e-9 && b <= xs[xs.len() - 1] + 1e-9);
    }

    /// Equi-depth buckets cover all data and are roughly balanced.
    #[test]
    fn equi_depth_buckets_balanced(xs in prop::collection::vec(-1e6f64..1e6, 50..200),
                                   phi in 2usize..10) {
        let cuts = stats::equi_depth_boundaries(&xs, phi).unwrap();
        prop_assert_eq!(cuts.len(), phi - 1);
        let mut counts = vec![0usize; phi];
        for &x in &xs {
            let b = stats::bucket_of(x, &cuts);
            prop_assert!(b < phi);
            counts[b] += 1;
        }
        // With continuous (almost surely distinct) data each bucket
        // holds n/phi ± 2.
        let target = xs.len() as f64 / phi as f64;
        for &c in &counts {
            prop_assert!((c as f64 - target).abs() <= 2.0 + target * 0.1,
                "counts {counts:?} target {target}");
        }
    }
}
