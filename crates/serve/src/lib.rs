//! # hos-serve
//!
//! A resident query server for HOS-Miner (Zhang et al., VLDB'04):
//! instead of refitting per CLI invocation, a fitted miner stays
//! warm in memory and answers outlying-subspace queries over
//! HTTP/1.1 (see `vendor/tinyhttp` — the environment has no
//! registry access, so the HTTP layer is a vendored stub over
//! `std::net`).
//!
//! Architecture (DESIGN.md §11):
//!
//! * [`server`] — thread-per-core accept workers, each owning its
//!   connections end to end plus a reusable response buffer.
//! * [`state`] — the miner behind a single-writer/many-reader lock;
//!   a cross-request **dynamic batcher** that coalesces concurrent
//!   queries into time/size-bounded windows and drives each window
//!   through one `HosMiner::query_each` fan-out (answers are
//!   bit-identical to serial execution — pinned by the concurrency
//!   oracle test); a bounded write queue drained by one writer
//!   thread that bumps a version counter under the write lock.
//! * [`json`] — dependency-free JSON with round-trip `f64`
//!   formatting, which is what makes bit-identity provable over the
//!   wire.
//!
//! * [`codec`] — the protocol-neutral request/reply model shared by
//!   both wire formats: one `execute` path per endpoint, with JSON
//!   and `hosbin` (length-prefixed binary, DESIGN.md §13) encoders
//!   over the same replies. Cross-protocol bit-identity is pinned by
//!   the differential oracle test.
//!
//! Endpoints: `POST /query` (id/ids/point/points), `POST /scan`,
//! `POST /insert`, `POST /retire`, `POST /explain`, `GET /stats`,
//! `GET /healthz`, `POST /shutdown` (graceful drain). Every error is
//! a typed JSON envelope; backpressure is a 429, drain a 503. The
//! same listener also speaks `hosbin`: a connection that opens with
//! the `\0HSB` preamble switches to framed binary with the same
//! endpoint set and error taxonomy.

pub mod codec;
pub mod json;
pub mod server;
pub mod state;

pub use codec::{ApiError, ApiReply, ApiRequest};
pub use json::Json;
pub use server::{ServeConfig, ServeReport, Server};
pub use state::{ServeError, SharedState, WriteOk, WriteOp};
