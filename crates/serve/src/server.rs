//! The serving front end: thread-per-core accept workers, protocol
//! negotiation, route dispatch.
//!
//! Each worker thread owns the connection it accepted end to end.
//! The first byte of a connection selects the protocol
//! ([`tinyhttp::Conn::sniff`]): HTTP/1.1 keep-alive, or `hosbin`
//! length-prefixed binary frames — one listener, two wire formats.
//! Both loops decode into [`crate::codec::ApiRequest`], run
//! [`crate::codec::execute`] (the single shared endpoint path) and
//! encode with their protocol's writer into reusable per-worker
//! scratch buffers; responses go out through the connection's
//! reusable write buffer ([`tinyhttp::Conn::reply`] /
//! [`tinyhttp::Conn::write_frame`]) — the steady-state request loop
//! allocates no response `String`.
//!
//! Error mapping, uniform across routes and protocols (JSON:
//! `{"error":{"kind":K,"message":M}}`; hosbin: an `0xFF` frame with
//! `u16 status` + kind + message):
//!
//! | source                      | status | kind                  |
//! |-----------------------------|--------|-----------------------|
//! | malformed HTTP              | per [`HttpError::status`] | per [`HttpError::kind`] |
//! | malformed hosbin frame      | per `BinError::status`    | per `BinError::kind`    |
//! | malformed JSON body         | 400    | `bad_json`            |
//! | missing/invalid fields      | 400    | `bad_request`         |
//! | `HosError::Query`/`Config`  | 400    | `query` / `config`    |
//! | `HosError::Index`/`Data`    | 422    | `index` / `data`      |
//! | queue full / scan gate      | 429    | `backpressure`        |
//! | draining                    | 503    | `draining`            |
//! | unknown path / opcode       | 404    | `not_found` / `unknown_opcode` |
//! | wrong method                | 405    | `method_not_allowed`  |

use crate::codec::{self, ApiError, ApiRequest};
use crate::json::Json;
use crate::state::SharedState;
use hos_core::{HosMiner, QuerySpec};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;
use tinyhttp::{Conn, HttpServer, Protocol, Request};

/// Tuning knobs of one server instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// HTTP worker threads; `0` = one per available core.
    pub workers: usize,
    /// Longest the batcher holds a window open after the first
    /// request arrives (hard cap in adaptive mode too).
    pub batch_window: Duration,
    /// Maximum specs per batch; `1` disables cross-request batching.
    pub batch_max: usize,
    /// Admission queue capacity (requests, not specs).
    pub query_queue_cap: usize,
    /// Write queue capacity.
    pub write_queue_cap: usize,
    /// Adaptive batch windows: hold a dry window open only while the
    /// arrival/cost model says the wait beats executing now. `false`
    /// restores the fixed close-when-dry window.
    pub adaptive_window: bool,
    /// Relative weight of point queries when splitting worker
    /// capacity between endpoints (see `scan_weight`).
    pub query_weight: usize,
    /// Relative weight of scans: at most
    /// `max(1, workers * scan_weight / (query_weight + scan_weight))`
    /// scans run concurrently, so a scan burst cannot occupy every
    /// worker and starve point queries.
    pub scan_weight: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            batch_window: Duration::from_millis(2),
            batch_max: 64,
            query_queue_cap: 1024,
            write_queue_cap: 1024,
            adaptive_window: true,
            query_weight: 3,
            scan_weight: 1,
        }
    }
}

/// Final tallies printed by the drain summary.
#[derive(Clone, Copy, Debug)]
pub struct ServeReport {
    /// HTTP requests served (any status).
    pub http_requests: u64,
    /// hosbin frames served (any outcome).
    pub bin_requests: u64,
    /// Query specs executed.
    pub specs: u64,
    /// Batches executed.
    pub batches: u64,
    /// Largest batch observed.
    pub max_batch: usize,
    /// Writes applied.
    pub writes: u64,
    /// Requests rejected with backpressure.
    pub rejected: u64,
}

/// A running server: bound address plus the handles needed to drain
/// and join it. Dropping without [`Server::join`] leaks the threads —
/// call `join` (tests, bench) or block forever in `main`.
pub struct Server {
    http: Arc<HttpServer>,
    state: Arc<SharedState>,
    addr: SocketAddr,
    workers: Vec<thread::JoinHandle<()>>,
    batcher: thread::JoinHandle<()>,
    writer: thread::JoinHandle<()>,
    done_rx: mpsc::Receiver<()>,
}

impl Server {
    /// Binds, spawns the worker/batcher/writer threads and returns
    /// immediately. `miner` must already be fitted.
    pub fn start(miner: HosMiner, config: &ServeConfig) -> io::Result<Server> {
        Server::start_with_store(miner, config, None)
    }

    /// Like [`Server::start`], but with a durable store attached
    /// before any request can be admitted, so no applied write ever
    /// misses the WAL. `store` is `(store, snapshot_every, carry)` as
    /// for [`SharedState::attach_store`].
    pub fn start_with_store(
        miner: HosMiner,
        config: &ServeConfig,
        store: Option<(hos_storage::Store, u64, (u64, u64, u64))>,
    ) -> io::Result<Server> {
        let workers = if config.workers == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let scan_permits = (workers * config.scan_weight)
            .checked_div(config.query_weight + config.scan_weight)
            .unwrap_or(workers)
            .max(1);
        let state = SharedState::new(
            miner,
            config.batch_window,
            config.batch_max,
            config.query_queue_cap,
            config.write_queue_cap,
            config.adaptive_window,
            scan_permits,
        );
        if let Some((s, snapshot_every, carry)) = store {
            state.attach_store(s, snapshot_every, carry);
        }
        let http = Arc::new(HttpServer::bind(config.addr.as_str())?);
        let addr = http.local_addr();
        let (done_tx, done_rx) = mpsc::channel::<()>();

        let batcher = {
            let s = Arc::clone(&state);
            thread::Builder::new()
                .name("hos-serve-batch".into())
                .spawn(move || s.batcher_loop())?
        };
        let writer = {
            let s = Arc::clone(&state);
            thread::Builder::new()
                .name("hos-serve-write".into())
                .spawn(move || s.writer_loop())?
        };
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let http = Arc::clone(&http);
            let state = Arc::clone(&state);
            let done = done_tx.clone();
            handles.push(
                thread::Builder::new()
                    .name(format!("hos-serve-{i}"))
                    .spawn(move || worker_loop(&http, &state, &done))?,
            );
        }
        Ok(Server {
            http,
            state,
            addr,
            workers: handles,
            batcher,
            writer,
            done_rx,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests and the bench reach in for counters).
    pub fn state(&self) -> &Arc<SharedState> {
        &self.state
    }

    /// Blocks until some client POSTs `/shutdown`, then drains and
    /// returns the final tallies.
    pub fn wait(self) -> ServeReport {
        // A worker signals on the done channel once drain starts; the
        // channel also closes if every worker dies, so a wedged server
        // cannot block forever here.
        let _ = self.done_rx.recv();
        self.join()
    }

    /// Initiates drain from the host process (equivalent to
    /// `/shutdown` but in-process — the bench uses this).
    pub fn initiate_shutdown(&self) {
        self.state.start_drain();
        self.http.shutdown();
    }

    /// Drains and joins everything: stop accepting, finish in-flight
    /// connections and queued work, join all threads.
    pub fn join(self) -> ServeReport {
        self.state.start_drain();
        self.http.shutdown();
        for w in self.workers {
            let _ = w.join();
        }
        // Workers are gone, so nothing can enqueue; the queues drain
        // to empty and both loops exit.
        let _ = self.batcher.join();
        let _ = self.writer.join();
        let c = &self.state.counters;
        ServeReport {
            http_requests: c.http_requests.load(Ordering::Relaxed),
            bin_requests: c.bin_requests.load(Ordering::Relaxed),
            specs: c.specs.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            max_batch: c.max_batch.load(Ordering::Relaxed),
            writes: c.writes.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
        }
    }
}

/// One worker: accept → sniff → per-protocol keep-alive loop. The
/// response body buffers are the worker's reusable scratch; the
/// connection's own write buffer stages heads/frames — the
/// steady-state loop allocates nothing per response.
fn worker_loop(http: &HttpServer, state: &Arc<SharedState>, done: &mpsc::Sender<()>) {
    let mut json_scratch = String::with_capacity(4 * 1024);
    let mut frame_body = Vec::with_capacity(4 * 1024);
    let mut frame_out = Vec::with_capacity(4 * 1024);
    loop {
        let mut conn = match http.accept() {
            Ok(Some(conn)) => conn,
            Ok(None) => return, // shutdown
            Err(_) => continue,
        };
        match conn.sniff() {
            Ok(Protocol::Http) => serve_conn_http(conn, state, &mut json_scratch, http, done),
            Ok(Protocol::Hosbin) => {
                serve_conn_bin(conn, state, &mut frame_body, &mut frame_out, http, done)
            }
            // Bad preamble or dead socket: close silently (nothing
            // useful is writable before a protocol is agreed).
            Err(_) => {}
        }
    }
}

fn serve_conn_http(
    mut conn: Conn,
    state: &Arc<SharedState>,
    scratch: &mut String,
    http: &HttpServer,
    done: &mpsc::Sender<()>,
) {
    loop {
        match conn.next_request() {
            Ok(Some(req)) => {
                state.counters.http_requests.fetch_add(1, Ordering::Relaxed);
                let keep = req.keep_alive;
                let (status, shutdown) = dispatch_http(&req, state, scratch);
                let close = !keep || shutdown;
                let _ = conn.reply(status, "application/json", scratch.as_bytes(), close);
                if shutdown {
                    // Drain: stop accepting (this worker and all
                    // others), wake the main thread, finish this
                    // connection.
                    http.shutdown();
                    let _ = done.send(());
                    return;
                }
                if close {
                    return;
                }
            }
            Ok(None) => return, // clean close between requests
            Err(e) => {
                // Malformed bytes: answer with the typed error when
                // the socket is still writable, then close. Never
                // panics — the protocol property tests pin this.
                let err = ApiError {
                    status: e.status(),
                    kind: e.kind(),
                    message: e.to_string(),
                };
                codec::encode_json_error(&err, scratch);
                let _ = conn.reply(err.status, "application/json", scratch.as_bytes(), true);
                return;
            }
        }
    }
}

/// Routes one HTTP request through the shared codec path, leaving
/// the response body in `scratch`. Returns `(status, shutdown_ack)`.
fn dispatch_http(req: &Request, state: &Arc<SharedState>, scratch: &mut String) -> (u16, bool) {
    match parse_http_request(req) {
        Ok(api) => {
            let shutdown = matches!(api, ApiRequest::Shutdown);
            match codec::execute(state, api) {
                Ok(reply) => {
                    codec::encode_json_reply(&reply, scratch);
                    (200, shutdown)
                }
                Err(e) => {
                    codec::encode_json_error(&e, scratch);
                    (e.status, false)
                }
            }
        }
        Err(e) => {
            codec::encode_json_error(&e, scratch);
            (e.status, false)
        }
    }
}

/// The hosbin connection loop: read frame → decode → execute (same
/// [`codec::execute`] as HTTP) → encode reply into the reusable
/// frame buffer. Recoverable decode errors (unknown opcode, bad
/// body) answer a typed `0xFF` frame and keep the connection; framing
/// and transport errors answer (best effort) and close.
fn serve_conn_bin(
    mut conn: Conn,
    state: &Arc<SharedState>,
    body: &mut Vec<u8>,
    out: &mut Vec<u8>,
    http: &HttpServer,
    done: &mpsc::Sender<()>,
) {
    loop {
        match conn.next_frame(body) {
            Ok(None) => return, // clean close at a frame boundary
            Ok(Some(opcode)) => {
                state.counters.bin_requests.fetch_add(1, Ordering::Relaxed);
                match codec::decode_bin_request(opcode, body) {
                    Ok(api) => {
                        let shutdown = matches!(api, ApiRequest::Shutdown);
                        let reply_op = match codec::execute(state, api) {
                            Ok(reply) => codec::encode_bin_reply(&reply, out),
                            Err(e) => {
                                codec::encode_bin_error(e.status, e.kind, &e.message, out);
                                codec::op::ERROR
                            }
                        };
                        if conn.write_frame(reply_op, out).is_err() {
                            return;
                        }
                        if shutdown && reply_op != codec::op::ERROR {
                            http.shutdown();
                            let _ = done.send(());
                            return;
                        }
                    }
                    Err(e) => {
                        codec::encode_bin_error(e.status(), e.kind(), &e.to_string(), out);
                        if conn.write_frame(codec::op::ERROR, out).is_err() || !e.recoverable() {
                            return;
                        }
                    }
                }
            }
            Err(e) => {
                // Framing/transport error: best-effort typed error
                // frame, then close (the stream position is lost).
                codec::encode_bin_error(e.status(), e.kind(), &e.to_string(), out);
                let _ = conn.write_frame(codec::op::ERROR, out);
                return;
            }
        }
    }
}

fn bad_request(msg: &str) -> ApiError {
    ApiError::bad_request(msg)
}

fn parse_body(req: &Request) -> Result<Json, ApiError> {
    let text = req.body_utf8();
    Json::parse(&text).map_err(|e| ApiError::bad_json(e.to_string()))
}

fn parse_point(v: &Json) -> Result<Vec<f64>, ApiError> {
    let arr = v
        .as_array()
        .ok_or_else(|| bad_request("point must be an array of numbers"))?;
    arr.iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| bad_request("point must be an array of numbers"))
        })
        .collect()
}

/// `{"id":N}` | `{"ids":[..]}` | `{"point":[..]}` | `{"points":[[..]]}`,
/// mixable in one request; specs run in field order.
fn parse_specs(body: &Json) -> Result<Vec<QuerySpec>, ApiError> {
    let mut specs = Vec::new();
    if let Some(v) = body.get("id") {
        specs
            .push(QuerySpec::Member(v.as_usize().ok_or_else(|| {
                bad_request("id must be a non-negative integer")
            })?));
    }
    if let Some(v) = body.get("ids") {
        let arr = v
            .as_array()
            .ok_or_else(|| bad_request("ids must be an array of integers"))?;
        for x in arr {
            specs.push(QuerySpec::Member(x.as_usize().ok_or_else(|| {
                bad_request("ids must be an array of non-negative integers")
            })?));
        }
    }
    if let Some(v) = body.get("point") {
        specs.push(QuerySpec::Point(parse_point(v)?));
    }
    if let Some(v) = body.get("points") {
        let arr = v
            .as_array()
            .ok_or_else(|| bad_request("points must be an array of arrays"))?;
        for p in arr {
            specs.push(QuerySpec::Point(parse_point(p)?));
        }
    }
    if specs.is_empty() {
        return Err(bad_request("query needs id, ids, point or points"));
    }
    Ok(specs)
}

/// Parses one HTTP request (route + JSON body) into the shared
/// [`ApiRequest`] model.
fn parse_http_request(req: &Request) -> Result<ApiRequest, ApiError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Ok(ApiRequest::Healthz),
        ("GET", "/stats") => Ok(ApiRequest::Stats),
        ("POST", "/query") => {
            let body = parse_body(req)?;
            Ok(ApiRequest::Query(parse_specs(&body)?))
        }
        ("POST", "/scan") => {
            let body = parse_body(req)?;
            let top = match body.get("top") {
                None => 5,
                Some(v) => v
                    .as_usize()
                    .ok_or_else(|| bad_request("top must be a non-negative integer"))?,
            };
            Ok(ApiRequest::Scan { top })
        }
        ("POST", "/insert") => {
            let body = parse_body(req)?;
            match body.get("row") {
                Some(v) => Ok(ApiRequest::Insert(parse_point(v)?)),
                None => Err(bad_request("insert needs a row array")),
            }
        }
        ("POST", "/retire") => {
            let body = parse_body(req)?;
            match body.get("id").and_then(Json::as_usize) {
                Some(id) => Ok(ApiRequest::Retire(id)),
                None => Err(bad_request("retire needs an integer id")),
            }
        }
        ("POST", "/explain") => {
            let body = parse_body(req)?;
            if let Some(v) = body.get("id") {
                let id = v
                    .as_usize()
                    .ok_or_else(|| bad_request("id must be a non-negative integer"))?;
                Ok(ApiRequest::ExplainId(id))
            } else if let Some(v) = body.get("point") {
                Ok(ApiRequest::ExplainPoint(parse_point(v)?))
            } else {
                Err(bad_request("explain needs id or point"))
            }
        }
        ("POST", "/shutdown") => Ok(ApiRequest::Shutdown),
        ("GET" | "POST", _) => Err(ApiError {
            status: 404,
            kind: "not_found",
            message: format!("no route {}", req.path),
        }),
        (m, _) => Err(ApiError {
            status: 405,
            kind: "method_not_allowed",
            message: format!("method {m} not supported"),
        }),
    }
}
