//! The HTTP server: thread-per-core accept workers, route dispatch
//! and response serialization.
//!
//! Each worker thread owns the connection it accepted end to end
//! (keep-alive loop included) plus a reusable response buffer — no
//! per-request allocation of the body `String`. Query routes go
//! through the admission batcher in [`crate::state`]; scan/explain
//! run on the worker under the read lock; insert/retire go through
//! the single-writer queue.
//!
//! Error mapping, uniform across routes (`{"error":{"kind":K,
//! "message":M}}` envelope):
//!
//! | source                      | status | kind                  |
//! |-----------------------------|--------|-----------------------|
//! | malformed HTTP              | per [`HttpError::status`] | per [`HttpError::kind`] |
//! | malformed JSON body         | 400    | `bad_json`            |
//! | missing/invalid fields      | 400    | `bad_request`         |
//! | `HosError::Query`/`Config`  | 400    | `query` / `config`    |
//! | `HosError::Index`/`Data`    | 422    | `index` / `data`      |
//! | queue full                  | 429    | `backpressure`        |
//! | draining                    | 503    | `draining`            |
//! | unknown path                | 404    | `not_found`           |
//! | wrong method                | 405    | `method_not_allowed`  |

use crate::json::{error_body, fmt_f64_roundtrip, push_json_string, Json};
use crate::state::{ServeError, SharedState, WriteOk, WriteOp};
use hos_core::{explain, HosError, HosMiner, QueryOutcome, QuerySpec};
use hos_data::Subspace;
use std::fmt::Write as _;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;
use tinyhttp::{Conn, HttpServer, Request, Response};

/// Tuning knobs of one server instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// HTTP worker threads; `0` = one per available core.
    pub workers: usize,
    /// How long the batcher holds a window open after the first
    /// request arrives.
    pub batch_window: Duration,
    /// Maximum specs per batch; `1` disables cross-request batching.
    pub batch_max: usize,
    /// Admission queue capacity (requests, not specs).
    pub query_queue_cap: usize,
    /// Write queue capacity.
    pub write_queue_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            batch_window: Duration::from_millis(2),
            batch_max: 64,
            query_queue_cap: 1024,
            write_queue_cap: 1024,
        }
    }
}

/// Final tallies printed by the drain summary.
#[derive(Clone, Copy, Debug)]
pub struct ServeReport {
    /// HTTP requests served (any status).
    pub http_requests: u64,
    /// Query specs executed.
    pub specs: u64,
    /// Batches executed.
    pub batches: u64,
    /// Largest batch observed.
    pub max_batch: usize,
    /// Writes applied.
    pub writes: u64,
    /// Requests rejected with backpressure.
    pub rejected: u64,
}

/// A running server: bound address plus the handles needed to drain
/// and join it. Dropping without [`Server::join`] leaks the threads —
/// call `join` (tests, bench) or block forever in `main`.
pub struct Server {
    http: Arc<HttpServer>,
    state: Arc<SharedState>,
    addr: SocketAddr,
    workers: Vec<thread::JoinHandle<()>>,
    batcher: thread::JoinHandle<()>,
    writer: thread::JoinHandle<()>,
    done_rx: mpsc::Receiver<()>,
}

impl Server {
    /// Binds, spawns the worker/batcher/writer threads and returns
    /// immediately. `miner` must already be fitted.
    pub fn start(miner: HosMiner, config: &ServeConfig) -> io::Result<Server> {
        Server::start_with_store(miner, config, None)
    }

    /// Like [`Server::start`], but with a durable store attached
    /// before any request can be admitted, so no applied write ever
    /// misses the WAL. `store` is `(store, snapshot_every, carry)` as
    /// for [`SharedState::attach_store`].
    pub fn start_with_store(
        miner: HosMiner,
        config: &ServeConfig,
        store: Option<(hos_storage::Store, u64, (u64, u64, u64))>,
    ) -> io::Result<Server> {
        let workers = if config.workers == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let state = SharedState::new(
            miner,
            config.batch_window,
            config.batch_max,
            config.query_queue_cap,
            config.write_queue_cap,
        );
        if let Some((s, snapshot_every, carry)) = store {
            state.attach_store(s, snapshot_every, carry);
        }
        let http = Arc::new(HttpServer::bind(config.addr.as_str())?);
        let addr = http.local_addr();
        let (done_tx, done_rx) = mpsc::channel::<()>();

        let batcher = {
            let s = Arc::clone(&state);
            thread::Builder::new()
                .name("hos-serve-batch".into())
                .spawn(move || s.batcher_loop())?
        };
        let writer = {
            let s = Arc::clone(&state);
            thread::Builder::new()
                .name("hos-serve-write".into())
                .spawn(move || s.writer_loop())?
        };
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let http = Arc::clone(&http);
            let state = Arc::clone(&state);
            let done = done_tx.clone();
            handles.push(
                thread::Builder::new()
                    .name(format!("hos-serve-{i}"))
                    .spawn(move || worker_loop(&http, &state, &done))?,
            );
        }
        Ok(Server {
            http,
            state,
            addr,
            workers: handles,
            batcher,
            writer,
            done_rx,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests and the bench reach in for counters).
    pub fn state(&self) -> &Arc<SharedState> {
        &self.state
    }

    /// Blocks until some client POSTs `/shutdown`, then drains and
    /// returns the final tallies.
    pub fn wait(self) -> ServeReport {
        // A worker signals on the done channel once drain starts; the
        // channel also closes if every worker dies, so a wedged server
        // cannot block forever here.
        let _ = self.done_rx.recv();
        self.join()
    }

    /// Initiates drain from the host process (equivalent to
    /// `/shutdown` but in-process — the bench uses this).
    pub fn initiate_shutdown(&self) {
        self.state.start_drain();
        self.http.shutdown();
    }

    /// Drains and joins everything: stop accepting, finish in-flight
    /// connections and queued work, join all threads.
    pub fn join(self) -> ServeReport {
        self.state.start_drain();
        self.http.shutdown();
        for w in self.workers {
            let _ = w.join();
        }
        // Workers are gone, so nothing can enqueue; the queues drain
        // to empty and both loops exit.
        let _ = self.batcher.join();
        let _ = self.writer.join();
        let c = &self.state.counters;
        ServeReport {
            http_requests: c.http_requests.load(Ordering::Relaxed),
            specs: c.specs.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            max_batch: c.max_batch.load(Ordering::Relaxed),
            writes: c.writes.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
        }
    }
}

/// One worker: accept → keep-alive request loop → dispatch. The
/// response body buffer is the worker's reusable scratch.
fn worker_loop(http: &HttpServer, state: &Arc<SharedState>, done: &mpsc::Sender<()>) {
    let mut scratch = String::with_capacity(4 * 1024);
    loop {
        let conn = match http.accept() {
            Ok(Some(conn)) => conn,
            Ok(None) => return, // shutdown
            Err(_) => continue,
        };
        serve_conn(conn, state, &mut scratch, http, done);
    }
}

fn serve_conn(
    mut conn: Conn,
    state: &Arc<SharedState>,
    scratch: &mut String,
    http: &HttpServer,
    done: &mpsc::Sender<()>,
) {
    loop {
        match conn.next_request() {
            Ok(Some(req)) => {
                state.counters.http_requests.fetch_add(1, Ordering::Relaxed);
                let keep = req.keep_alive;
                let shutdown = req.method == "POST" && req.path == "/shutdown";
                let resp = dispatch(&req, state, scratch);
                let _ = conn.respond(&resp);
                if shutdown && resp.status == 200 {
                    // Drain: stop accepting (this worker and all
                    // others), wake the main thread, finish this
                    // connection.
                    http.shutdown();
                    let _ = done.send(());
                    return;
                }
                if !keep || resp.close {
                    return;
                }
            }
            Ok(None) => return, // clean close between requests
            Err(e) => {
                // Malformed bytes: answer with the typed error when
                // the socket is still writable, then close. Never
                // panics — the protocol property tests pin this.
                let body = error_body(e.kind(), &e.to_string());
                let _ = conn.respond(&Response::json(e.status(), body).closing());
                return;
            }
        }
    }
}

fn dispatch(req: &Request, state: &Arc<SharedState>, scratch: &mut String) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "{\"ok\":true}"),
        ("GET", "/stats") => handle_stats(state, scratch),
        ("POST", "/query") => handle_query(req, state, scratch),
        ("POST", "/scan") => handle_scan(req, state, scratch),
        ("POST", "/insert") => handle_insert(req, state),
        ("POST", "/retire") => handle_retire(req, state),
        ("POST", "/explain") => handle_explain(req, state, scratch),
        ("POST", "/shutdown") => {
            state.start_drain();
            Response::json(200, "{\"draining\":true}").closing()
        }
        ("GET" | "POST", _) => Response::json(
            404,
            error_body("not_found", &format!("no route {}", req.path)),
        ),
        (m, _) => Response::json(
            405,
            error_body("method_not_allowed", &format!("method {m} not supported")),
        ),
    }
}

fn bad_request(msg: &str) -> Response {
    Response::json(400, error_body("bad_request", msg))
}

fn hos_error_response(e: &HosError) -> Response {
    let status = match e {
        HosError::Query(_) | HosError::Config(_) => 400,
        HosError::Index(_) | HosError::Data(_) => 422,
    };
    Response::json(status, error_body(e.kind(), &e.to_string()))
}

fn serve_error_response(e: &ServeError) -> Response {
    Response::json(e.status(), error_body(e.kind(), &e.to_string()))
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = req.body_utf8();
    Json::parse(&text).map_err(|e| Response::json(400, error_body("bad_json", &e.to_string())))
}

fn parse_point(v: &Json) -> Result<Vec<f64>, Response> {
    let arr = v
        .as_array()
        .ok_or_else(|| bad_request("point must be an array of numbers"))?;
    arr.iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| bad_request("point must be an array of numbers"))
        })
        .collect()
}

/// `{"id":N}` | `{"ids":[..]}` | `{"point":[..]}` | `{"points":[[..]]}`,
/// mixable in one request; specs run in field order.
fn parse_specs(body: &Json) -> Result<Vec<QuerySpec>, Response> {
    let mut specs = Vec::new();
    if let Some(v) = body.get("id") {
        specs
            .push(QuerySpec::Member(v.as_usize().ok_or_else(|| {
                bad_request("id must be a non-negative integer")
            })?));
    }
    if let Some(v) = body.get("ids") {
        let arr = v
            .as_array()
            .ok_or_else(|| bad_request("ids must be an array of integers"))?;
        for x in arr {
            specs.push(QuerySpec::Member(x.as_usize().ok_or_else(|| {
                bad_request("ids must be an array of non-negative integers")
            })?));
        }
    }
    if let Some(v) = body.get("point") {
        specs.push(QuerySpec::Point(parse_point(v)?));
    }
    if let Some(v) = body.get("points") {
        let arr = v
            .as_array()
            .ok_or_else(|| bad_request("points must be an array of arrays"))?;
        for p in arr {
            specs.push(QuerySpec::Point(parse_point(p)?));
        }
    }
    if specs.is_empty() {
        return Err(bad_request("query needs id, ids, point or points"));
    }
    Ok(specs)
}

fn push_subspace(out: &mut String, s: Subspace) {
    out.push('[');
    for (i, d) in s.dims().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{d}");
    }
    out.push(']');
}

/// Serializes one outcome. Dimensions are 0-based (machine API; the
/// CLI's 1-based convention is presentation only). ODs use the
/// round-trip `f64` format, so parsing the JSON back recovers the
/// exact bits — the basis of the serve bit-identity oracle.
fn push_outcome(out: &mut String, o: &QueryOutcome) {
    out.push_str("{\"outlying\":[");
    for (i, s) in o.outlying.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"subspace\":");
        push_subspace(out, s.subspace);
        out.push_str(",\"od\":");
        match s.od {
            Some(od) => {
                let _ = write!(out, "{}", fmt_f64_roundtrip(od));
            }
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("],\"minimal\":[");
    for (i, s) in o.minimal.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_subspace(out, *s);
    }
    let _ = write!(
        out,
        "],\"stats\":{{\"od_evals\":{},\"pruned_outlier\":{},\"pruned_non_outlier\":{}}}}}",
        o.stats.od_evals, o.stats.pruned_outlier, o.stats.pruned_non_outlier
    );
}

fn push_item_error(out: &mut String, e: &HosError) {
    out.push_str("{\"error\":{\"kind\":");
    push_json_string(out, e.kind());
    out.push_str(",\"message\":");
    push_json_string(out, &e.to_string());
    out.push_str("}}");
}

fn handle_query(req: &Request, state: &Arc<SharedState>, scratch: &mut String) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let specs = match parse_specs(&body) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let (version, results) = match state.submit_query(specs) {
        Ok(r) => r,
        Err(e) => return serve_error_response(&e),
    };
    scratch.clear();
    let _ = write!(scratch, "{{\"version\":{version},\"results\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            scratch.push(',');
        }
        match r {
            Ok(outcome) => push_outcome(scratch, outcome),
            Err(e) => push_item_error(scratch, e),
        }
    }
    scratch.push_str("]}");
    Response::json(200, scratch.as_str())
}

fn handle_scan(req: &Request, state: &Arc<SharedState>, scratch: &mut String) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let top = match body.get("top") {
        None => 5,
        Some(v) => match v.as_usize() {
            Some(n) => n,
            None => return bad_request("top must be a non-negative integer"),
        },
    };
    if state.is_draining() {
        return serve_error_response(&ServeError::Draining);
    }
    let (version, report) =
        state.with_read(|miner, version| (version, hos_core::scan_outliers(miner, top)));
    let report = match report {
        Ok(r) => r,
        Err(e) => return hos_error_response(&e),
    };
    scratch.clear();
    let _ = write!(
        scratch,
        "{{\"version\":{version},\"threshold\":{},\"truncated\":{},\"skipped\":{},\"hits\":[",
        fmt_f64_roundtrip(report.threshold),
        report.truncated,
        report.skipped
    );
    for (i, hit) in report.hits.iter().enumerate() {
        if i > 0 {
            scratch.push(',');
        }
        let _ = write!(
            scratch,
            "{{\"id\":{},\"full_od\":{},\"minimal\":[",
            hit.id,
            fmt_f64_roundtrip(hit.full_od)
        );
        for (j, s) in hit.outcome.minimal.iter().enumerate() {
            if j > 0 {
                scratch.push(',');
            }
            push_subspace(scratch, *s);
        }
        scratch.push_str("]}");
    }
    scratch.push_str("]}");
    Response::json(200, scratch.as_str())
}

fn handle_insert(req: &Request, state: &Arc<SharedState>) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let row = match body.get("row") {
        Some(v) => match parse_point(v) {
            Ok(row) => row,
            Err(resp) => return resp,
        },
        None => return bad_request("insert needs a row array"),
    };
    match state.submit_write(WriteOp::Insert(row)) {
        Ok((version, Ok(WriteOk::Inserted(id)))) => {
            Response::json(200, format!("{{\"version\":{version},\"id\":{id}}}"))
        }
        Ok((_, Ok(WriteOk::Retired))) => unreachable!("insert cannot retire"),
        Ok((_, Err(e))) => hos_error_response(&e),
        Err(e) => serve_error_response(&e),
    }
}

fn handle_retire(req: &Request, state: &Arc<SharedState>) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let id = match body.get("id").and_then(Json::as_usize) {
        Some(id) => id,
        None => return bad_request("retire needs an integer id"),
    };
    match state.submit_write(WriteOp::Retire(id)) {
        Ok((version, Ok(_))) => Response::json(200, format!("{{\"version\":{version}}}")),
        Ok((_, Err(e))) => hos_error_response(&e),
        Err(e) => serve_error_response(&e),
    }
}

fn handle_explain(req: &Request, state: &Arc<SharedState>, scratch: &mut String) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    if state.is_draining() {
        return serve_error_response(&ServeError::Draining);
    }
    let result = state.with_read(|miner, version| {
        let (query, exclude, outcome) = if let Some(v) = body.get("id") {
            let Some(id) = v.as_usize() else {
                return Err(bad_request("id must be a non-negative integer"));
            };
            let outcome = miner.query_id(id).map_err(|e| hos_error_response(&e))?;
            let row = miner.engine().dataset().row(id).to_vec();
            (row, Some(id), outcome)
        } else if let Some(v) = body.get("point") {
            let point = parse_point(v)?;
            let outcome = miner
                .query_point(&point)
                .map_err(|e| hos_error_response(&e))?;
            (point, None, outcome)
        } else {
            return Err(bad_request("explain needs id or point"));
        };
        let ex = explain(miner, &query, exclude, &outcome).map_err(|e| hos_error_response(&e))?;
        Ok((version, ex))
    });
    let (version, ex) = match result {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    scratch.clear();
    let _ = write!(
        scratch,
        "{{\"version\":{version},\"threshold\":{},\"deviations\":[",
        fmt_f64_roundtrip(ex.threshold)
    );
    for (i, d) in ex.deviations.iter().enumerate() {
        if i > 0 {
            scratch.push(',');
        }
        let _ = write!(
            scratch,
            "{{\"dim\":{},\"value\":{},\"median\":{},\"robust_z\":{}}}",
            d.dim,
            fmt_f64_roundtrip(d.value),
            fmt_f64_roundtrip(d.median),
            fmt_f64_roundtrip(d.robust_z)
        );
    }
    scratch.push_str("],\"subspaces\":[");
    for (i, s) in ex.subspaces.iter().enumerate() {
        if i > 0 {
            scratch.push(',');
        }
        scratch.push_str("{\"subspace\":");
        push_subspace(scratch, s.subspace);
        let _ = write!(
            scratch,
            ",\"od\":{},\"margin\":{}}}",
            fmt_f64_roundtrip(s.od),
            fmt_f64_roundtrip(s.margin)
        );
    }
    scratch.push_str("]}");
    Response::json(200, scratch.as_str())
}

fn handle_stats(state: &Arc<SharedState>, scratch: &mut String) -> Response {
    let (version, live, dim, threshold, threads) = state.with_read(|miner, version| {
        (
            version,
            miner.live_len(),
            miner.engine().dataset().dim(),
            miner.threshold(),
            miner.config().threads,
        )
    });
    let c = &state.counters;
    scratch.clear();
    let _ = write!(
        scratch,
        "{{\"version\":{version},\"live\":{live},\"dim\":{dim},\"threshold\":{},\
         \"threads\":{threads},\"draining\":{},\
         \"queries\":{},\"specs\":{},\"batches\":{},\"max_batch\":{},\
         \"writes\":{},\"rejected\":{},\"http_requests\":{}}}",
        fmt_f64_roundtrip(threshold),
        state.is_draining(),
        c.queries.load(Ordering::Relaxed),
        c.specs.load(Ordering::Relaxed),
        c.batches.load(Ordering::Relaxed),
        c.max_batch.load(Ordering::Relaxed),
        c.writes.load(Ordering::Relaxed),
        c.rejected.load(Ordering::Relaxed),
        c.http_requests.load(Ordering::Relaxed)
    );
    Response::json(200, scratch.as_str())
}
