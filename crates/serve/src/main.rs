//! `hos-serve` binary: fit a miner once, serve it until `/shutdown`.

use hos_core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_data::csv::{read_csv_path, CsvOptions};
use hos_data::synth::planted::{generate, PlantedSpec};
use hos_data::{Dataset, Metric, Subspace};
use hos_index::Engine;
use hos_serve::{ServeConfig, Server};
use std::time::Duration;

const HELP: &str = "\
hos-serve — resident HTTP query server for HOS-Miner

USAGE:
  hos-serve (--data FILE [--header] | --n 2000 --d 6) [--seed 0]
            [--model FILE] [--data-dir DIR]
            [--k 5] [--threshold T | --quantile 0.95]
            [--engine linear|xtree|vafile|hnsw] [--metric l1|l2|linf]
            [--ef N] [--recall-target 0.95]
            [--threads 1] [--shards 1] [--samples 20]
            [--addr 127.0.0.1:7878] [--workers 0]
            [--batch-window-ms 2] [--batch-max 64] [--queue-cap 1024]
            [--fixed-window] [--query-weight 3] [--scan-weight 1]
            [--sync-every 64] [--snapshot-every 4096]

Fits once at startup, then serves POST /query /scan /insert /retire
/explain and GET /stats /healthz until POST /shutdown, which drains
gracefully: admitted work finishes, new work gets 503. --workers 0
means one HTTP worker per core. --batch-max 1 disables cross-request
batching (answers are bit-identical either way). Batch windows are
adaptive by default: the batcher holds a dry window open only while
its arrival/cost model says waiting beats executing now (capped by
--batch-window-ms); --fixed-window restores close-when-dry windows.
--query-weight/--scan-weight split worker capacity between endpoints:
at most workers*scan/(query+scan) scans run at once, so scan bursts
cannot starve point queries (excess scans get 429 after a short wait).
The same listener also speaks hosbin, the length-prefixed binary
protocol (DESIGN.md §13): a connection opening with the `\\0HSB`
preamble switches to framed binary with identical semantics.
--model FILE loads a model written by `hos-miner fit` instead of
re-learning (the data flags still supply the rows). --engine hnsw
serves approximate k-NN with exact distances; --ef fixes its
candidate-pool width, --recall-target calibrates it.
--data-dir DIR makes the server durable: on start it recovers the
newest snapshot plus the WAL tail written there (by a previous serve
run, `hos-miner stream --wal` or `fit --snapshot`); every applied
insert/retire is logged to the WAL (fsync batched every --sync-every
ops) before the client is acknowledged, and a compacted columnar
snapshot is checkpointed every --snapshot-every writes and at drain.
A fresh --data-dir is initialised from the data flags. The tuning
flags must match the ones the store was created with (a mismatch is
a typed startup error, not silent divergence).";

struct Flags {
    map: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(argv: &[String]) -> Result<Flags, String> {
        let mut map = Vec::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument {arg:?}"));
            };
            if name == "header" || name == "help" || name == "fixed-window" {
                switches.push(name.to_string());
                i += 1;
            } else {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                map.push((name.to_string(), value.clone()));
                i += 2;
            }
        }
        Ok(Flags { map, switches })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.map
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad value {v:?}")),
        }
    }
}

fn load_dataset(flags: &Flags) -> Result<Dataset, String> {
    if let Some(path) = flags.get("data") {
        let opts = CsvOptions {
            delimiter: ',',
            has_header: flags.switch("header"),
        };
        return read_csv_path(path, &opts).map_err(|e| format!("loading {path}: {e}"));
    }
    let n: usize = flags.num("n", 2000)?;
    let d: usize = flags.num("d", 6)?;
    let seed: u64 = flags.num("seed", 0)?;
    let spec = PlantedSpec {
        n_background: n,
        d,
        n_clusters: 3,
        cluster_sigma: 1.0,
        extent: 60.0,
        targets: vec![Subspace::from_dims(&[0, 1])],
        shift_sigmas: 12.0,
        seed,
    };
    generate(&spec)
        .map(|w| w.dataset)
        .map_err(|e| e.to_string())
}

fn miner_config(flags: &Flags) -> Result<HosMinerConfig, String> {
    let threshold = match (flags.get("threshold"), flags.get("quantile")) {
        (Some(t), _) => ThresholdPolicy::Fixed(
            t.parse()
                .map_err(|_| format!("--threshold: bad value {t:?}"))?,
        ),
        (None, q) => ThresholdPolicy::FullSpaceQuantile {
            q: q.map_or(Ok(0.95), |v| {
                v.parse()
                    .map_err(|_| format!("--quantile: bad value {v:?}"))
            })?,
            sample: 200,
        },
    };
    let engine: Engine = flags.get("engine").unwrap_or("linear").parse()?;
    let metric = match flags.get("metric").unwrap_or("l2") {
        "l1" => Metric::L1,
        "l2" => Metric::L2,
        "linf" => Metric::LInf,
        other => return Err(format!("unknown metric {other:?}")),
    };
    let ef = match flags.get("ef") {
        None => None,
        Some(v) => {
            let ef: usize = v.parse().map_err(|_| format!("--ef: bad value {v:?}"))?;
            if ef == 0 {
                return Err("--ef must be positive".into());
            }
            Some(ef)
        }
    };
    let recall_target = match flags.get("recall-target") {
        None => None,
        Some(v) => {
            let t: f64 = v
                .parse()
                .map_err(|_| format!("--recall-target: bad value {v:?}"))?;
            if !(t.is_finite() && t > 0.0 && t <= 1.0) {
                return Err(format!("--recall-target {t} must be in (0, 1]"));
            }
            Some(t)
        }
    };
    Ok(HosMinerConfig {
        k: flags.num("k", 5)?,
        threshold,
        metric,
        engine,
        sample_size: flags.num("samples", 20)?,
        threads: flags.num("threads", 1)?,
        shards: flags.num("shards", 1)?,
        seed: flags.num("seed", 0)?,
        ef,
        recall_target,
        ..HosMinerConfig::default()
    })
}

fn build_miner(flags: &Flags, config: &HosMinerConfig) -> Result<HosMiner, String> {
    let ds = load_dataset(flags)?;
    if let Some(path) = flags.get("model") {
        let model = hos_core::ModelFile::load(path).map_err(|e| e.to_string())?;
        let miner = model
            .into_miner_with(ds, config.shards, config.threads)
            .map_err(|e| e.to_string())?;
        // Search width is machine tuning, never part of the model
        // file: honour the flags at load time, like the CLI does.
        if let Some(ef) = config.ef {
            miner.engine().set_search_width(ef);
        }
        if let Some(target) = config.recall_target {
            hos_index::calibrate_search_width(
                miner.engine(),
                miner.config().k,
                target,
                16,
                config.seed.wrapping_add(2),
            );
        }
        return Ok(miner);
    }
    HosMiner::fit(ds, *config).map_err(|e| e.to_string())
}

/// With `--data-dir`, recovers the miner from the durable store (or
/// initialises a fresh store from the data flags); without it, plain
/// fit/load. Returns the store so the writer thread can keep logging
/// to it, plus the stream counters to carry into future snapshots.
#[allow(clippy::type_complexity)]
fn recover_or_fit(
    flags: &Flags,
    config: &HosMinerConfig,
) -> Result<(HosMiner, Option<(hos_storage::Store, (u64, u64, u64))>), String> {
    let Some(dir) = flags.get("data-dir") else {
        return Ok((build_miner(flags, config)?, None));
    };
    let sync_every: usize = flags.num("sync-every", 64)?;
    let expected = hos_storage::config_fingerprint(config, None);
    let open = |meta: String| {
        hos_storage::Store::open(
            std::path::Path::new(dir),
            hos_storage::StoreConfig { sync_every, meta },
        )
    };
    let (mut store, recovery) = match open(expected.clone()) {
        Ok(pair) => pair,
        // A store written by `stream --wal` fingerprints the window
        // too. The window only drives stream-side decisions, which are
        // already logged as explicit ops — every replay-relevant flag
        // still matches, so adopt the stored meta.
        Err(hos_storage::StorageError::MetaMismatch { found, .. })
            if found.starts_with(&expected) && found[expected.len()..].starts_with(" window=") =>
        {
            open(found).map_err(|e| format!("opening data dir {dir}: {e}"))?
        }
        Err(e) => return Err(format!("opening data dir {dir}: {e}")),
    };
    if let Some(snap) = &recovery.snapshot {
        let mut miner = hos_storage::miner_from_snapshot(snap, config)
            .map_err(|e| format!("recovering from {dir}: {e}"))?;
        for (_, op) in &recovery.ops {
            match op {
                hos_storage::Op::Insert(row) => {
                    miner.insert_point(row).map_err(|e| e.to_string())?;
                }
                hos_storage::Op::Retire(id) => {
                    miner
                        .retire_point(*id as usize)
                        .map_err(|e| e.to_string())?;
                }
                other => {
                    return Err(format!(
                        "data dir {dir} has a streaming `{}` op in its WAL tail; \
                         recover it with `hos-miner stream --wal {dir}` first",
                        other.name()
                    ))
                }
            }
        }
        let m = snap.meta();
        println!(
            "hos-serve recovered: snapshot seq {}, {} wal ops replayed, live={}",
            m.seq,
            recovery.ops.len(),
            miner.live_len()
        );
        let carry = (m.base, m.oldest, m.rows_consumed);
        return Ok((miner, Some((store, carry))));
    }
    if !recovery.ops.is_empty() {
        return Err(format!(
            "data dir {dir} has WAL ops but no snapshot (a pre-bootstrap stream log); \
             recover it with `hos-miner stream --wal {dir}`"
        ));
    }
    // Fresh directory: fit from the data flags and checkpoint
    // immediately so a restart recovers instead of refitting.
    let miner = build_miner(flags, config)?;
    let model_text = hos_core::ModelFile::from_miner(&miner).to_text();
    let n = miner.engine().dataset().len() as u64;
    store
        .snapshot(&hos_storage::store::SnapshotState {
            dataset: miner.engine().dataset(),
            model: Some(&model_text),
            base: 0,
            oldest: 0,
            rows_consumed: n,
            search_width: hos_storage::snapshot_search_width(&miner),
        })
        .map_err(|e| format!("initialising data dir {dir}: {e}"))?;
    println!(
        "hos-serve initialised data dir {dir} at seq {}",
        store.last_seq()
    );
    Ok((miner, Some((store, (0, 0, n)))))
}

fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    if flags.switch("help") {
        println!("{HELP}");
        return Ok(());
    }
    let miner_config = miner_config(&flags)?;
    let (miner, store) = recover_or_fit(&flags, &miner_config)?;
    let config = ServeConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: flags.num("workers", 0)?,
        batch_window: Duration::from_millis(flags.num("batch-window-ms", 2)?),
        batch_max: flags.num("batch-max", 64)?,
        query_queue_cap: flags.num("queue-cap", 1024)?,
        write_queue_cap: flags.num("queue-cap", 1024)?,
        adaptive_window: !flags.switch("fixed-window"),
        query_weight: flags.num("query-weight", 3)?,
        scan_weight: flags.num("scan-weight", 1)?,
    };
    if config.query_weight == 0 || config.scan_weight == 0 {
        return Err("--query-weight and --scan-weight must be positive".into());
    }
    let live = miner.live_len();
    let dim = miner.engine().dataset().dim();
    let snapshot_every: u64 = flags.num("snapshot-every", 4096)?;
    let server = Server::start_with_store(
        miner,
        &config,
        store.map(|(s, carry)| (s, snapshot_every, carry)),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "hos-serve listening on {} (live={live} dim={dim} workers={} batch_max={} window={}ms)",
        server.addr(),
        if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        },
        config.batch_max,
        config.batch_window.as_millis()
    );
    let report = server.wait();
    println!(
        "hos-serve drained: requests={} bin_requests={} specs={} batches={} max_batch={} \
         writes={} rejected={}",
        report.http_requests,
        report.bin_requests,
        report.specs,
        report.batches,
        report.max_batch,
        report.writes,
        report.rejected
    );
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&argv) {
        eprintln!("hos-serve: {e}");
        std::process::exit(2);
    }
}
