//! `hos-serve` binary: fit a miner once, serve it until `/shutdown`.

use hos_core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_data::csv::{read_csv_path, CsvOptions};
use hos_data::synth::planted::{generate, PlantedSpec};
use hos_data::{Dataset, Metric, Subspace};
use hos_index::Engine;
use hos_serve::{ServeConfig, Server};
use std::time::Duration;

const HELP: &str = "\
hos-serve — resident HTTP query server for HOS-Miner

USAGE:
  hos-serve (--data FILE [--header] | --n 2000 --d 6) [--seed 0]
            [--k 5] [--threshold T | --quantile 0.95]
            [--engine linear|xtree|vafile|hnsw] [--metric l1|l2|linf]
            [--threads 1] [--shards 1] [--samples 20]
            [--addr 127.0.0.1:7878] [--workers 0]
            [--batch-window-ms 2] [--batch-max 64] [--queue-cap 1024]

Fits once at startup, then serves POST /query /scan /insert /retire
/explain and GET /stats /healthz until POST /shutdown, which drains
gracefully: admitted work finishes, new work gets 503. --workers 0
means one HTTP worker per core. --batch-max 1 disables cross-request
batching (answers are bit-identical either way).";

struct Flags {
    map: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(argv: &[String]) -> Result<Flags, String> {
        let mut map = Vec::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument {arg:?}"));
            };
            if name == "header" || name == "help" {
                switches.push(name.to_string());
                i += 1;
            } else {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                map.push((name.to_string(), value.clone()));
                i += 2;
            }
        }
        Ok(Flags { map, switches })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.map
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad value {v:?}")),
        }
    }
}

fn load_dataset(flags: &Flags) -> Result<Dataset, String> {
    if let Some(path) = flags.get("data") {
        let opts = CsvOptions {
            delimiter: ',',
            has_header: flags.switch("header"),
        };
        return read_csv_path(path, &opts).map_err(|e| format!("loading {path}: {e}"));
    }
    let n: usize = flags.num("n", 2000)?;
    let d: usize = flags.num("d", 6)?;
    let seed: u64 = flags.num("seed", 0)?;
    let spec = PlantedSpec {
        n_background: n,
        d,
        n_clusters: 3,
        cluster_sigma: 1.0,
        extent: 60.0,
        targets: vec![Subspace::from_dims(&[0, 1])],
        shift_sigmas: 12.0,
        seed,
    };
    generate(&spec)
        .map(|w| w.dataset)
        .map_err(|e| e.to_string())
}

fn build_miner(flags: &Flags) -> Result<HosMiner, String> {
    let ds = load_dataset(flags)?;
    let threshold = match (flags.get("threshold"), flags.get("quantile")) {
        (Some(t), _) => ThresholdPolicy::Fixed(
            t.parse()
                .map_err(|_| format!("--threshold: bad value {t:?}"))?,
        ),
        (None, q) => ThresholdPolicy::FullSpaceQuantile {
            q: q.map_or(Ok(0.95), |v| {
                v.parse()
                    .map_err(|_| format!("--quantile: bad value {v:?}"))
            })?,
            sample: 200,
        },
    };
    let engine: Engine = flags.get("engine").unwrap_or("linear").parse()?;
    let metric = match flags.get("metric").unwrap_or("l2") {
        "l1" => Metric::L1,
        "l2" => Metric::L2,
        "linf" => Metric::LInf,
        other => return Err(format!("unknown metric {other:?}")),
    };
    let config = HosMinerConfig {
        k: flags.num("k", 5)?,
        threshold,
        metric,
        engine,
        sample_size: flags.num("samples", 20)?,
        threads: flags.num("threads", 1)?,
        shards: flags.num("shards", 1)?,
        seed: flags.num("seed", 0)?,
        ..HosMinerConfig::default()
    };
    HosMiner::fit(ds, config).map_err(|e| e.to_string())
}

fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    if flags.switch("help") {
        println!("{HELP}");
        return Ok(());
    }
    let miner = build_miner(&flags)?;
    let config = ServeConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: flags.num("workers", 0)?,
        batch_window: Duration::from_millis(flags.num("batch-window-ms", 2)?),
        batch_max: flags.num("batch-max", 64)?,
        query_queue_cap: flags.num("queue-cap", 1024)?,
        write_queue_cap: flags.num("queue-cap", 1024)?,
    };
    let live = miner.live_len();
    let dim = miner.engine().dataset().dim();
    let server = Server::start(miner, &config).map_err(|e| e.to_string())?;
    println!(
        "hos-serve listening on {} (live={live} dim={dim} workers={} batch_max={} window={}ms)",
        server.addr(),
        if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        },
        config.batch_max,
        config.batch_window.as_millis()
    );
    let report = server.wait();
    println!(
        "hos-serve drained: requests={} specs={} batches={} max_batch={} writes={} rejected={}",
        report.http_requests,
        report.specs,
        report.batches,
        report.max_batch,
        report.writes,
        report.rejected
    );
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&argv) {
        eprintln!("hos-serve: {e}");
        std::process::exit(2);
    }
}
