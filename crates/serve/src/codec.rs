//! The shared protocol seam: one typed request/reply model, one
//! execution path, two encoders.
//!
//! Both wire protocols decode into [`ApiRequest`], run through
//! [`execute`] (the ONLY place endpoint semantics live), and encode
//! the resulting [`ApiReply`] with either the JSON writer (byte-for-
//! byte the PR 7 format) or the hosbin writer (`f64`s as raw bits).
//! Identical replies across protocols are therefore structural, not
//! coincidental — the differential oracle in `tests/oracle.rs` pins
//! it end to end.
//!
//! hosbin opcodes (request; reply is `op | 0x80`, errors `0xFF`):
//!
//! | op   | endpoint  | body                                             |
//! |------|-----------|--------------------------------------------------|
//! | 0x01 | query     | `u32 n` then per spec `u8 tag` (0 = member `u64 id`, 1 = point `u32 dim` + `dim × f64`) |
//! | 0x02 | scan      | `u64 top`                                        |
//! | 0x03 | insert    | `u32 dim` + `dim × f64`                          |
//! | 0x04 | retire    | `u64 id`                                         |
//! | 0x05 | explain   | `u8 tag` (0 = `u64 id`, 1 = `u32 dim` + `dim × f64`) |
//! | 0x06 | stats     | empty                                            |
//! | 0x07 | healthz   | empty                                            |
//! | 0x08 | shutdown  | empty                                            |
//!
//! Strings travel as `u32 len` + UTF-8; error frames carry `u16
//! status`, `str kind`, `str message` — the same envelope the JSON
//! path serializes as `{"error":{"kind":K,"message":M}}`.

use crate::json::{fmt_f64_roundtrip, push_json_string, Json};
use crate::state::{ServeError, SharedState, WriteOk, WriteOp};
use hos_core::{explain, Explanation, HosError, QueryOutcome, QuerySpec, ScanReport};
use hos_data::Subspace;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use tinyhttp::bin::{put_f64, put_str, put_u16, put_u32, put_u64, put_u8, BinError, WireReader};

/// hosbin opcodes.
pub mod op {
    /// `POST /query` equivalent.
    pub const QUERY: u8 = 0x01;
    /// `POST /scan` equivalent.
    pub const SCAN: u8 = 0x02;
    /// `POST /insert` equivalent.
    pub const INSERT: u8 = 0x03;
    /// `POST /retire` equivalent.
    pub const RETIRE: u8 = 0x04;
    /// `POST /explain` equivalent.
    pub const EXPLAIN: u8 = 0x05;
    /// `GET /stats` equivalent.
    pub const STATS: u8 = 0x06;
    /// `GET /healthz` equivalent.
    pub const HEALTHZ: u8 = 0x07;
    /// `POST /shutdown` equivalent.
    pub const SHUTDOWN: u8 = 0x08;
    /// OR-ed onto the request opcode in a success reply.
    pub const REPLY: u8 = 0x80;
    /// Error reply opcode.
    pub const ERROR: u8 = 0xFF;
}

/// One decoded API request, whichever wire it arrived on.
#[derive(Clone, Debug, PartialEq)]
pub enum ApiRequest {
    /// Query one or more specs (batched through the admission queue).
    Query(Vec<QuerySpec>),
    /// Rank live points and search the top hits.
    Scan { top: usize },
    /// Insert a row.
    Insert(Vec<f64>),
    /// Retire a live point.
    Retire(usize),
    /// Explain a member point.
    ExplainId(usize),
    /// Explain an arbitrary point.
    ExplainPoint(Vec<f64>),
    /// Counters snapshot.
    Stats,
    /// Liveness probe.
    Healthz,
    /// Graceful drain.
    Shutdown,
}

/// Counters snapshot for a stats reply.
#[derive(Clone, Copy, Debug)]
pub struct StatsSnapshot {
    pub version: u64,
    pub live: usize,
    pub dim: usize,
    pub threshold: f64,
    pub threads: usize,
    pub draining: bool,
    pub queries: u64,
    pub specs: u64,
    pub batches: u64,
    pub max_batch: usize,
    pub writes: u64,
    pub rejected: u64,
    pub http_requests: u64,
    pub bin_requests: u64,
}

/// One successful API reply, ready for either encoder.
pub enum ApiReply {
    /// Per-spec outcomes (item errors stay per-item, like the JSON
    /// results array).
    Query {
        version: u64,
        results: Vec<Result<QueryOutcome, HosError>>,
    },
    /// A scan report.
    Scan { version: u64, report: ScanReport },
    /// The id an insert produced.
    Insert { version: u64, id: usize },
    /// Retire acknowledged.
    Retire { version: u64 },
    /// An explanation.
    Explain {
        version: u64,
        explanation: Explanation,
    },
    /// Counters snapshot.
    Stats(StatsSnapshot),
    /// `{"ok":true}`.
    Healthz,
    /// `{"draining":true}`.
    Shutdown,
}

/// A failed API request: status + the stable kind tag + message —
/// exactly the `{"error":{...}}` envelope, protocol-agnostic.
#[derive(Clone, Debug, PartialEq)]
pub struct ApiError {
    pub status: u16,
    pub kind: &'static str,
    pub message: String,
}

impl ApiError {
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            kind: "bad_request",
            message: message.into(),
        }
    }

    pub fn bad_json(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            kind: "bad_json",
            message: message.into(),
        }
    }

    pub fn from_hos(e: &HosError) -> ApiError {
        let status = match e {
            HosError::Query(_) | HosError::Config(_) => 400,
            HosError::Index(_) | HosError::Data(_) => 422,
        };
        ApiError {
            status,
            kind: e.kind(),
            message: e.to_string(),
        }
    }

    pub fn from_serve(e: &ServeError) -> ApiError {
        ApiError {
            status: e.status(),
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

// ----------------------------------------------------------- execute

/// Runs one request against the shared state. Both protocols call
/// this and nothing else — endpoint semantics live here once.
pub fn execute(state: &SharedState, req: ApiRequest) -> Result<ApiReply, ApiError> {
    match req {
        ApiRequest::Query(specs) => {
            let (version, results) = state
                .submit_query(specs)
                .map_err(|e| ApiError::from_serve(&e))?;
            Ok(ApiReply::Query { version, results })
        }
        ApiRequest::Scan { top } => {
            if state.is_draining() {
                return Err(ApiError::from_serve(&ServeError::Draining));
            }
            let _permit = state.acquire_scan().map_err(|e| ApiError::from_serve(&e))?;
            let (version, report) =
                state.with_read(|miner, version| (version, hos_core::scan_outliers(miner, top)));
            let report = report.map_err(|e| ApiError::from_hos(&e))?;
            Ok(ApiReply::Scan { version, report })
        }
        ApiRequest::Insert(row) => match state.submit_write(WriteOp::Insert(row)) {
            Ok((version, Ok(WriteOk::Inserted(id)))) => Ok(ApiReply::Insert { version, id }),
            Ok((_, Ok(WriteOk::Retired))) => unreachable!("insert cannot retire"),
            Ok((_, Err(e))) => Err(ApiError::from_hos(&e)),
            Err(e) => Err(ApiError::from_serve(&e)),
        },
        ApiRequest::Retire(id) => match state.submit_write(WriteOp::Retire(id)) {
            Ok((version, Ok(_))) => Ok(ApiReply::Retire { version }),
            Ok((_, Err(e))) => Err(ApiError::from_hos(&e)),
            Err(e) => Err(ApiError::from_serve(&e)),
        },
        ApiRequest::ExplainId(_) | ApiRequest::ExplainPoint(_) => {
            if state.is_draining() {
                return Err(ApiError::from_serve(&ServeError::Draining));
            }
            let result = state.with_read(|miner, version| {
                let (query, exclude, outcome) = match &req {
                    ApiRequest::ExplainId(id) => {
                        let outcome = miner.query_id(*id).map_err(|e| ApiError::from_hos(&e))?;
                        let row = miner.engine().dataset().row(*id).to_vec();
                        (row, Some(*id), outcome)
                    }
                    ApiRequest::ExplainPoint(point) => {
                        let outcome = miner
                            .query_point(point)
                            .map_err(|e| ApiError::from_hos(&e))?;
                        (point.clone(), None, outcome)
                    }
                    _ => unreachable!("outer match covers explain only"),
                };
                let ex = explain(miner, &query, exclude, &outcome)
                    .map_err(|e| ApiError::from_hos(&e))?;
                Ok((version, ex))
            });
            let (version, explanation) = result?;
            Ok(ApiReply::Explain {
                version,
                explanation,
            })
        }
        ApiRequest::Stats => {
            let (version, live, dim, threshold, threads) = state.with_read(|miner, version| {
                (
                    version,
                    miner.live_len(),
                    miner.engine().dataset().dim(),
                    miner.threshold(),
                    miner.config().threads,
                )
            });
            let c = &state.counters;
            Ok(ApiReply::Stats(StatsSnapshot {
                version,
                live,
                dim,
                threshold,
                threads,
                draining: state.is_draining(),
                queries: c.queries.load(Ordering::Relaxed),
                specs: c.specs.load(Ordering::Relaxed),
                batches: c.batches.load(Ordering::Relaxed),
                max_batch: c.max_batch.load(Ordering::Relaxed),
                writes: c.writes.load(Ordering::Relaxed),
                rejected: c.rejected.load(Ordering::Relaxed),
                http_requests: c.http_requests.load(Ordering::Relaxed),
                bin_requests: c.bin_requests.load(Ordering::Relaxed),
            }))
        }
        ApiRequest::Healthz => Ok(ApiReply::Healthz),
        ApiRequest::Shutdown => {
            state.start_drain();
            Ok(ApiReply::Shutdown)
        }
    }
}

// ------------------------------------------------------ JSON encoder

fn push_subspace(out: &mut String, s: Subspace) {
    out.push('[');
    for (i, d) in s.dims().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{d}");
    }
    out.push(']');
}

/// Serializes one outcome. Dimensions are 0-based (machine API; the
/// CLI's 1-based convention is presentation only). ODs use the
/// round-trip `f64` format, so parsing the JSON back recovers the
/// exact bits — the basis of the serve bit-identity oracle.
fn push_outcome(out: &mut String, o: &QueryOutcome) {
    out.push_str("{\"outlying\":[");
    for (i, s) in o.outlying.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"subspace\":");
        push_subspace(out, s.subspace);
        out.push_str(",\"od\":");
        match s.od {
            Some(od) => {
                let _ = write!(out, "{}", fmt_f64_roundtrip(od));
            }
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("],\"minimal\":[");
    for (i, s) in o.minimal.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_subspace(out, *s);
    }
    let _ = write!(
        out,
        "],\"stats\":{{\"od_evals\":{},\"pruned_outlier\":{},\"pruned_non_outlier\":{}}}}}",
        o.stats.od_evals, o.stats.pruned_outlier, o.stats.pruned_non_outlier
    );
}

fn push_item_error(out: &mut String, e: &HosError) {
    out.push_str("{\"error\":{\"kind\":");
    push_json_string(out, e.kind());
    out.push_str(",\"message\":");
    push_json_string(out, &e.to_string());
    out.push_str("}}");
}

/// Encodes a reply as the PR 7 JSON wire format into `out` (cleared
/// first; the caller's reusable scratch).
pub fn encode_json_reply(reply: &ApiReply, out: &mut String) {
    out.clear();
    match reply {
        ApiReply::Query { version, results } => {
            let _ = write!(out, "{{\"version\":{version},\"results\":[");
            for (i, r) in results.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match r {
                    Ok(outcome) => push_outcome(out, outcome),
                    Err(e) => push_item_error(out, e),
                }
            }
            out.push_str("]}");
        }
        ApiReply::Scan { version, report } => {
            let _ = write!(
                out,
                "{{\"version\":{version},\"threshold\":{},\"truncated\":{},\"skipped\":{},\"hits\":[",
                fmt_f64_roundtrip(report.threshold),
                report.truncated,
                report.skipped
            );
            for (i, hit) in report.hits.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"id\":{},\"full_od\":{},\"minimal\":[",
                    hit.id,
                    fmt_f64_roundtrip(hit.full_od)
                );
                for (j, s) in hit.outcome.minimal.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    push_subspace(out, *s);
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
        ApiReply::Insert { version, id } => {
            let _ = write!(out, "{{\"version\":{version},\"id\":{id}}}");
        }
        ApiReply::Retire { version } => {
            let _ = write!(out, "{{\"version\":{version}}}");
        }
        ApiReply::Explain {
            version,
            explanation: ex,
        } => {
            let _ = write!(
                out,
                "{{\"version\":{version},\"threshold\":{},\"deviations\":[",
                fmt_f64_roundtrip(ex.threshold)
            );
            for (i, d) in ex.deviations.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"dim\":{},\"value\":{},\"median\":{},\"robust_z\":{}}}",
                    d.dim,
                    fmt_f64_roundtrip(d.value),
                    fmt_f64_roundtrip(d.median),
                    fmt_f64_roundtrip(d.robust_z)
                );
            }
            out.push_str("],\"subspaces\":[");
            for (i, s) in ex.subspaces.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"subspace\":");
                push_subspace(out, s.subspace);
                let _ = write!(
                    out,
                    ",\"od\":{},\"margin\":{}}}",
                    fmt_f64_roundtrip(s.od),
                    fmt_f64_roundtrip(s.margin)
                );
            }
            out.push_str("]}");
        }
        ApiReply::Stats(s) => {
            let _ = write!(
                out,
                "{{\"version\":{},\"live\":{},\"dim\":{},\"threshold\":{},\
                 \"threads\":{},\"draining\":{},\
                 \"queries\":{},\"specs\":{},\"batches\":{},\"max_batch\":{},\
                 \"writes\":{},\"rejected\":{},\"http_requests\":{},\"bin_requests\":{}}}",
                s.version,
                s.live,
                s.dim,
                fmt_f64_roundtrip(s.threshold),
                s.threads,
                s.draining,
                s.queries,
                s.specs,
                s.batches,
                s.max_batch,
                s.writes,
                s.rejected,
                s.http_requests,
                s.bin_requests
            );
        }
        ApiReply::Healthz => out.push_str("{\"ok\":true}"),
        ApiReply::Shutdown => out.push_str("{\"draining\":true}"),
    }
}

/// Encodes the error envelope as JSON into `out` (cleared first).
pub fn encode_json_error(e: &ApiError, out: &mut String) {
    out.clear();
    out.push_str("{\"error\":{\"kind\":");
    push_json_string(out, e.kind);
    out.push_str(",\"message\":");
    push_json_string(out, &e.message);
    out.push_str("}}");
}

// ----------------------------------------------------- hosbin decode

fn decode_point(r: &mut WireReader<'_>, what: &str) -> Result<Vec<f64>, BinError> {
    let dim = r.u32(what)? as usize;
    if r.remaining() < dim * 8 {
        return Err(BinError::BadBody(format!(
            "{what}: declared {dim} coords, only {} bytes left",
            r.remaining()
        )));
    }
    let mut point = Vec::with_capacity(dim);
    for _ in 0..dim {
        point.push(r.f64(what)?);
    }
    Ok(point)
}

/// Decodes one hosbin request frame. Unknown opcodes and undecodable
/// bodies are typed, recoverable errors — the frame boundary is
/// intact, the connection keeps serving.
pub fn decode_bin_request(opcode: u8, body: &[u8]) -> Result<ApiRequest, BinError> {
    let mut r = WireReader::new(body);
    let req = match opcode {
        op::QUERY => {
            let n = r.u32("spec count")? as usize;
            if n == 0 {
                return Err(BinError::BadBody(
                    "query needs at least one spec".to_string(),
                ));
            }
            // Each spec is at least 2 wire bytes: cheap sanity bound
            // before reserving anything.
            if n > r.remaining() {
                return Err(BinError::BadBody(format!(
                    "declared {n} specs, only {} bytes left",
                    r.remaining()
                )));
            }
            let mut specs = Vec::with_capacity(n);
            for _ in 0..n {
                match r.u8("spec tag")? {
                    0 => specs.push(QuerySpec::Member(r.u64("member id")? as usize)),
                    1 => specs.push(QuerySpec::Point(decode_point(&mut r, "point")?)),
                    t => {
                        return Err(BinError::BadBody(format!("unknown spec tag {t}")));
                    }
                }
            }
            ApiRequest::Query(specs)
        }
        op::SCAN => ApiRequest::Scan {
            top: r.u64("top")? as usize,
        },
        op::INSERT => ApiRequest::Insert(decode_point(&mut r, "row")?),
        op::RETIRE => ApiRequest::Retire(r.u64("id")? as usize),
        op::EXPLAIN => match r.u8("explain tag")? {
            0 => ApiRequest::ExplainId(r.u64("id")? as usize),
            1 => ApiRequest::ExplainPoint(decode_point(&mut r, "point")?),
            t => {
                return Err(BinError::BadBody(format!("unknown explain tag {t}")));
            }
        },
        op::STATS => ApiRequest::Stats,
        op::HEALTHZ => ApiRequest::Healthz,
        op::SHUTDOWN => ApiRequest::Shutdown,
        other => return Err(BinError::UnknownOpcode(other)),
    };
    r.done()?;
    Ok(req)
}

/// Encodes a request as a hosbin frame body into `out` (cleared
/// first), returning the opcode to send it under. The client half of
/// [`decode_bin_request`]; `bench serve` and the CI probe use it.
pub fn encode_bin_request(req: &ApiRequest, out: &mut Vec<u8>) -> u8 {
    out.clear();
    match req {
        ApiRequest::Query(specs) => {
            put_u32(out, specs.len() as u32);
            for s in specs {
                match s {
                    QuerySpec::Member(id) => {
                        put_u8(out, 0);
                        put_u64(out, *id as u64);
                    }
                    QuerySpec::Point(p) => {
                        put_u8(out, 1);
                        put_u32(out, p.len() as u32);
                        for x in p {
                            put_f64(out, *x);
                        }
                    }
                }
            }
            op::QUERY
        }
        ApiRequest::Scan { top } => {
            put_u64(out, *top as u64);
            op::SCAN
        }
        ApiRequest::Insert(row) => {
            put_u32(out, row.len() as u32);
            for x in row {
                put_f64(out, *x);
            }
            op::INSERT
        }
        ApiRequest::Retire(id) => {
            put_u64(out, *id as u64);
            op::RETIRE
        }
        ApiRequest::ExplainId(id) => {
            put_u8(out, 0);
            put_u64(out, *id as u64);
            op::EXPLAIN
        }
        ApiRequest::ExplainPoint(p) => {
            put_u8(out, 1);
            put_u32(out, p.len() as u32);
            for x in p {
                put_f64(out, *x);
            }
            op::EXPLAIN
        }
        ApiRequest::Stats => op::STATS,
        ApiRequest::Healthz => op::HEALTHZ,
        ApiRequest::Shutdown => op::SHUTDOWN,
    }
}

// ----------------------------------------------------- hosbin encode

fn put_subspace(out: &mut Vec<u8>, s: Subspace) {
    let dims: Vec<usize> = s.dims().collect();
    put_u32(out, dims.len() as u32);
    for d in dims {
        put_u32(out, d as u32);
    }
}

fn put_bin_outcome(out: &mut Vec<u8>, o: &QueryOutcome) {
    put_u8(out, 0); // ok
    put_u32(out, o.outlying.len() as u32);
    for s in &o.outlying {
        put_subspace(out, s.subspace);
        match s.od {
            Some(od) => {
                put_u8(out, 1);
                put_f64(out, od);
            }
            None => put_u8(out, 0),
        }
    }
    put_u32(out, o.minimal.len() as u32);
    for s in &o.minimal {
        put_subspace(out, *s);
    }
    put_u64(out, o.stats.od_evals);
    put_u64(out, o.stats.pruned_outlier);
    put_u64(out, o.stats.pruned_non_outlier);
}

/// Encodes a reply as a hosbin frame body into `out` (cleared first),
/// returning the reply opcode. `f64`s go out as raw bits: bit-exact
/// by construction.
pub fn encode_bin_reply(reply: &ApiReply, out: &mut Vec<u8>) -> u8 {
    out.clear();
    match reply {
        ApiReply::Query { version, results } => {
            put_u64(out, *version);
            put_u32(out, results.len() as u32);
            for r in results {
                match r {
                    Ok(outcome) => put_bin_outcome(out, outcome),
                    Err(e) => {
                        put_u8(out, 1); // item error
                        put_str(out, e.kind());
                        put_str(out, &e.to_string());
                    }
                }
            }
            op::QUERY | op::REPLY
        }
        ApiReply::Scan { version, report } => {
            put_u64(out, *version);
            put_f64(out, report.threshold);
            put_u64(out, report.truncated as u64);
            put_u64(out, report.skipped as u64);
            put_u32(out, report.hits.len() as u32);
            for hit in &report.hits {
                put_u64(out, hit.id as u64);
                put_f64(out, hit.full_od);
                put_u32(out, hit.outcome.minimal.len() as u32);
                for s in &hit.outcome.minimal {
                    put_subspace(out, *s);
                }
            }
            op::SCAN | op::REPLY
        }
        ApiReply::Insert { version, id } => {
            put_u64(out, *version);
            put_u64(out, *id as u64);
            op::INSERT | op::REPLY
        }
        ApiReply::Retire { version } => {
            put_u64(out, *version);
            op::RETIRE | op::REPLY
        }
        ApiReply::Explain {
            version,
            explanation: ex,
        } => {
            put_u64(out, *version);
            put_f64(out, ex.threshold);
            put_u32(out, ex.deviations.len() as u32);
            for d in &ex.deviations {
                put_u32(out, d.dim as u32);
                put_f64(out, d.value);
                put_f64(out, d.median);
                put_f64(out, d.robust_z);
            }
            put_u32(out, ex.subspaces.len() as u32);
            for s in &ex.subspaces {
                put_subspace(out, s.subspace);
                put_f64(out, s.od);
                put_f64(out, s.margin);
            }
            op::EXPLAIN | op::REPLY
        }
        ApiReply::Stats(s) => {
            put_u64(out, s.version);
            put_u64(out, s.live as u64);
            put_u64(out, s.dim as u64);
            put_f64(out, s.threshold);
            put_u64(out, s.threads as u64);
            put_u8(out, s.draining as u8);
            put_u64(out, s.queries);
            put_u64(out, s.specs);
            put_u64(out, s.batches);
            put_u64(out, s.max_batch as u64);
            put_u64(out, s.writes);
            put_u64(out, s.rejected);
            put_u64(out, s.http_requests);
            put_u64(out, s.bin_requests);
            op::STATS | op::REPLY
        }
        ApiReply::Healthz => {
            put_u8(out, 1);
            op::HEALTHZ | op::REPLY
        }
        ApiReply::Shutdown => {
            put_u8(out, 1);
            op::SHUTDOWN | op::REPLY
        }
    }
}

/// Encodes the error envelope as a hosbin `0xFF` frame body into
/// `out` (cleared first).
pub fn encode_bin_error(status: u16, kind: &str, message: &str, out: &mut Vec<u8>) {
    out.clear();
    put_u16(out, status);
    put_str(out, kind);
    put_str(out, message);
}

// ---------------------------------------------- client-side decoding

fn json_subspace(r: &mut WireReader<'_>) -> Result<Json, BinError> {
    let n = r.u32("subspace len")? as usize;
    let mut dims = Vec::with_capacity(n.min(r.remaining() / 4 + 1));
    for _ in 0..n {
        dims.push(Json::Num(r.u32("subspace dim")? as f64));
    }
    Ok(Json::Arr(dims))
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Decodes a hosbin reply frame into `(status, Json)` with exactly
/// the shape (and key order) of the JSON protocol's reply for the
/// same request — the bridge the differential oracle compares
/// across. Numbers keep their bits: `f64`s come straight from
/// `from_bits`, so `to_bits` equality against the JSON path's
/// round-trip formatting is exact.
pub fn bin_reply_to_json(opcode: u8, body: &[u8]) -> Result<(u16, Json), BinError> {
    let mut r = WireReader::new(body);
    let (status, value) = match opcode {
        op::ERROR => {
            let status = r.u16("status")?;
            let kind = r.str("kind")?.to_string();
            let message = r.str("message")?.to_string();
            (
                status,
                obj(vec![(
                    "error",
                    obj(vec![
                        ("kind", Json::Str(kind)),
                        ("message", Json::Str(message)),
                    ]),
                )]),
            )
        }
        o if o == op::QUERY | op::REPLY => {
            let version = r.u64("version")?;
            let n = r.u32("result count")? as usize;
            let mut results = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                match r.u8("result tag")? {
                    0 => {
                        let n_out = r.u32("outlying count")? as usize;
                        let mut outlying = Vec::with_capacity(n_out.min(1024));
                        for _ in 0..n_out {
                            let sub = json_subspace(&mut r)?;
                            let od = match r.u8("od flag")? {
                                0 => Json::Null,
                                _ => Json::Num(r.f64("od")?),
                            };
                            outlying.push(obj(vec![("subspace", sub), ("od", od)]));
                        }
                        let n_min = r.u32("minimal count")? as usize;
                        let mut minimal = Vec::with_capacity(n_min.min(1024));
                        for _ in 0..n_min {
                            minimal.push(json_subspace(&mut r)?);
                        }
                        let stats = obj(vec![
                            ("od_evals", Json::Num(r.u64("od_evals")? as f64)),
                            ("pruned_outlier", Json::Num(r.u64("pruned_outlier")? as f64)),
                            (
                                "pruned_non_outlier",
                                Json::Num(r.u64("pruned_non_outlier")? as f64),
                            ),
                        ]);
                        results.push(obj(vec![
                            ("outlying", Json::Arr(outlying)),
                            ("minimal", Json::Arr(minimal)),
                            ("stats", stats),
                        ]));
                    }
                    _ => {
                        let kind = r.str("kind")?.to_string();
                        let message = r.str("message")?.to_string();
                        results.push(obj(vec![(
                            "error",
                            obj(vec![
                                ("kind", Json::Str(kind)),
                                ("message", Json::Str(message)),
                            ]),
                        )]));
                    }
                }
            }
            (
                200,
                obj(vec![
                    ("version", Json::Num(version as f64)),
                    ("results", Json::Arr(results)),
                ]),
            )
        }
        o if o == op::SCAN | op::REPLY => {
            let version = r.u64("version")?;
            let threshold = r.f64("threshold")?;
            let truncated = r.u64("truncated")?;
            let skipped = r.u64("skipped")?;
            let n = r.u32("hit count")? as usize;
            let mut hits = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let id = r.u64("hit id")?;
                let full_od = r.f64("full_od")?;
                let n_min = r.u32("minimal count")? as usize;
                let mut minimal = Vec::with_capacity(n_min.min(1024));
                for _ in 0..n_min {
                    minimal.push(json_subspace(&mut r)?);
                }
                hits.push(obj(vec![
                    ("id", Json::Num(id as f64)),
                    ("full_od", Json::Num(full_od)),
                    ("minimal", Json::Arr(minimal)),
                ]));
            }
            (
                200,
                obj(vec![
                    ("version", Json::Num(version as f64)),
                    ("threshold", Json::Num(threshold)),
                    ("truncated", Json::Num(truncated as f64)),
                    ("skipped", Json::Num(skipped as f64)),
                    ("hits", Json::Arr(hits)),
                ]),
            )
        }
        o if o == op::INSERT | op::REPLY => {
            let version = r.u64("version")?;
            let id = r.u64("id")?;
            (
                200,
                obj(vec![
                    ("version", Json::Num(version as f64)),
                    ("id", Json::Num(id as f64)),
                ]),
            )
        }
        o if o == op::RETIRE | op::REPLY => {
            let version = r.u64("version")?;
            (200, obj(vec![("version", Json::Num(version as f64))]))
        }
        o if o == op::EXPLAIN | op::REPLY => {
            let version = r.u64("version")?;
            let threshold = r.f64("threshold")?;
            let n_dev = r.u32("deviation count")? as usize;
            let mut deviations = Vec::with_capacity(n_dev.min(1024));
            for _ in 0..n_dev {
                deviations.push(obj(vec![
                    ("dim", Json::Num(r.u32("dim")? as f64)),
                    ("value", Json::Num(r.f64("value")?)),
                    ("median", Json::Num(r.f64("median")?)),
                    ("robust_z", Json::Num(r.f64("robust_z")?)),
                ]));
            }
            let n_sub = r.u32("subspace count")? as usize;
            let mut subspaces = Vec::with_capacity(n_sub.min(1024));
            for _ in 0..n_sub {
                let sub = json_subspace(&mut r)?;
                subspaces.push(obj(vec![
                    ("subspace", sub),
                    ("od", Json::Num(r.f64("od")?)),
                    ("margin", Json::Num(r.f64("margin")?)),
                ]));
            }
            (
                200,
                obj(vec![
                    ("version", Json::Num(version as f64)),
                    ("threshold", Json::Num(threshold)),
                    ("deviations", Json::Arr(deviations)),
                    ("subspaces", Json::Arr(subspaces)),
                ]),
            )
        }
        o if o == op::STATS | op::REPLY => {
            let version = r.u64("version")?;
            let live = r.u64("live")?;
            let dim = r.u64("dim")?;
            let threshold = r.f64("threshold")?;
            let threads = r.u64("threads")?;
            let draining = r.u8("draining")? != 0;
            let fields = [
                "queries",
                "specs",
                "batches",
                "max_batch",
                "writes",
                "rejected",
                "http_requests",
                "bin_requests",
            ];
            let mut out = vec![
                ("version".to_string(), Json::Num(version as f64)),
                ("live".to_string(), Json::Num(live as f64)),
                ("dim".to_string(), Json::Num(dim as f64)),
                ("threshold".to_string(), Json::Num(threshold)),
                ("threads".to_string(), Json::Num(threads as f64)),
                ("draining".to_string(), Json::Bool(draining)),
            ];
            for f in fields {
                out.push((f.to_string(), Json::Num(r.u64(f)? as f64)));
            }
            (200, Json::Obj(out))
        }
        o if o == op::HEALTHZ | op::REPLY => {
            let _ = r.u8("ok")?;
            (200, obj(vec![("ok", Json::Bool(true))]))
        }
        o if o == op::SHUTDOWN | op::REPLY => {
            let _ = r.u8("ack")?;
            (200, obj(vec![("draining", Json::Bool(true))]))
        }
        other => return Err(BinError::UnknownOpcode(other)),
    };
    r.done()?;
    Ok((status, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_request_roundtrip_every_variant() {
        let reqs = vec![
            ApiRequest::Query(vec![
                QuerySpec::Member(7),
                QuerySpec::Point(vec![1.5, -0.0, f64::MIN_POSITIVE]),
            ]),
            ApiRequest::Scan { top: 12 },
            ApiRequest::Insert(vec![3.25, 4.75]),
            ApiRequest::Retire(99),
            ApiRequest::ExplainId(3),
            ApiRequest::ExplainPoint(vec![0.1, 0.2]),
            ApiRequest::Stats,
            ApiRequest::Healthz,
            ApiRequest::Shutdown,
        ];
        let mut buf = Vec::new();
        for req in reqs {
            let opcode = encode_bin_request(&req, &mut buf);
            let back = decode_bin_request(opcode, &buf).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn bin_decode_rejects_malformed_bodies_typed() {
        // Unknown opcode.
        assert!(matches!(
            decode_bin_request(0x7e, b""),
            Err(BinError::UnknownOpcode(0x7e))
        ));
        // Trailing garbage after a valid payload.
        let mut buf = Vec::new();
        let opcode = encode_bin_request(&ApiRequest::Retire(1), &mut buf);
        buf.push(0xaa);
        assert!(matches!(
            decode_bin_request(opcode, &buf),
            Err(BinError::BadBody(_))
        ));
        // Declared point larger than the body.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(matches!(
            decode_bin_request(op::INSERT, &buf),
            Err(BinError::BadBody(_))
        ));
        // Zero-spec query.
        let mut buf = Vec::new();
        put_u32(&mut buf, 0);
        assert!(matches!(
            decode_bin_request(op::QUERY, &buf),
            Err(BinError::BadBody(_))
        ));
        // Spec-count larger than the remaining bytes: rejected before
        // any allocation.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        put_u8(&mut buf, 0);
        assert!(matches!(
            decode_bin_request(op::QUERY, &buf),
            Err(BinError::BadBody(_))
        ));
    }

    #[test]
    fn bin_error_envelope_roundtrips_to_json_shape() {
        let mut buf = Vec::new();
        encode_bin_error(422, "index", "point 3 is retired", &mut buf);
        let (status, v) = bin_reply_to_json(op::ERROR, &buf).unwrap();
        assert_eq!(status, 422);
        let err = v.get("error").unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("index"));
        assert_eq!(
            err.get("message").unwrap().as_str(),
            Some("point 3 is retired")
        );
    }
}
