//! Shared serving state: the miner behind a single-writer/many-reader
//! lock, the cross-request dynamic batcher and the write queue.
//!
//! Concurrency discipline (DESIGN.md §11):
//!
//! * **Reads** (query batches, scans, explains, stats) take the
//!   `RwLock` read side — any number run at once.
//! * **Writes** (insert/retire) go through a bounded queue drained by
//!   ONE writer thread that takes the write side, applies the
//!   mutation, and bumps [`SharedState::version`] *while still
//!   holding the lock*. A reader that loads `version` under the read
//!   lock therefore observes the state exactly as of that version —
//!   the serialization point the concurrency oracle replays against.
//! * **Query batching**: requests enqueue their [`QuerySpec`]s on a
//!   bounded admission queue; one batcher thread collects a window
//!   (first arrival opens it, it closes after `batch_window` or at
//!   `batch_max` specs) and drives the whole window through ONE
//!   [`HosMiner::query_each`] call — the same `batch_search` fan-out
//!   the CLI uses, so every answer is bit-identical to running that
//!   query alone. In **adaptive** mode (DESIGN.md §13) the batcher
//!   additionally holds a non-full window open for one expected
//!   inter-arrival gap when the EWMA cost model says the wait is
//!   cheaper than executing now — and closes immediately otherwise.
//! * **Per-endpoint weights**: scans run on worker threads under the
//!   read lock, so a burst of `/scan` requests could occupy every
//!   worker and starve point queries. A semaphore sized from the
//!   configured query:scan weights caps concurrent scans; waiting is
//!   bounded, then typed backpressure (429).
//! * **Backpressure**: a full queue rejects immediately with a typed
//!   error the HTTP layer maps to 429; nothing blocks unboundedly.
//! * **Drain**: shutdown flips `draining` (new work is refused with a
//!   503-mapped error), wakes both queues, and the batcher/writer
//!   threads finish everything already admitted before exiting — no
//!   admitted request is ever dropped.

use hos_core::{HosError, HosMiner, ModelFile, QueryOutcome, QuerySpec};
use hos_data::PointId;
use hos_storage::store::SnapshotState;
use hos_storage::{snapshot_search_width, Op, Store};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Why the serving layer refused or failed a request before (or
/// while) the miner saw it.
#[derive(Debug)]
pub enum ServeError {
    /// The admission or write queue is full — try again later (429).
    Backpressure(&'static str),
    /// The server is draining and takes no new work (503).
    Draining,
    /// The executing thread disappeared without replying (500).
    Internal(&'static str),
}

impl ServeError {
    /// Stable tag for the JSON error envelope.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Backpressure(_) => "backpressure",
            ServeError::Draining => "draining",
            ServeError::Internal(_) => "internal",
        }
    }

    /// HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::Backpressure(_) => 429,
            ServeError::Draining => 503,
            ServeError::Internal(_) => 500,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Backpressure(which) => {
                write!(f, "{which} queue full, retry later")
            }
            ServeError::Draining => write!(f, "server is draining"),
            ServeError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

/// One admitted query request: its specs plus the channel its
/// response goes back on. The batcher replies with the version the
/// batch observed and one result per spec, in order.
struct QueryJob {
    specs: Vec<QuerySpec>,
    reply: mpsc::Sender<(u64, Vec<Result<QueryOutcome, HosError>>)>,
}

/// A mutation for the writer thread.
pub enum WriteOp {
    /// Insert a row, returning its new id.
    Insert(Vec<f64>),
    /// Retire a live point.
    Retire(PointId),
}

/// What a successful write produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOk {
    /// The id the inserted row received.
    Inserted(PointId),
    /// The retire completed.
    Retired,
}

struct WriteJob {
    op: WriteOp,
    reply: mpsc::Sender<(u64, Result<WriteOk, HosError>)>,
}

/// A bounded MPSC queue with condvar wakeups: `push` never blocks
/// (full = typed backpressure), consumers wait on the condvar.
struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    fn new(cap: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn push(&self, item: T, which: &'static str) -> Result<(), ServeError> {
        let mut q = self.inner.lock().expect("queue poisoned");
        if q.len() >= self.cap {
            return Err(ServeError::Backpressure(which));
        }
        q.push_back(item);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    fn wake_all(&self) {
        self.ready.notify_all();
    }
}

/// Monotonic counters exported by `/stats`.
#[derive(Default)]
pub struct Counters {
    /// Query requests admitted (each may carry several specs).
    pub queries: AtomicU64,
    /// Individual query specs executed.
    pub specs: AtomicU64,
    /// Batches the batcher executed.
    pub batches: AtomicU64,
    /// Largest spec count any single batch reached.
    pub max_batch: AtomicUsize,
    /// Writes applied (insert + retire).
    pub writes: AtomicU64,
    /// Requests refused with backpressure (429).
    pub rejected: AtomicU64,
    /// HTTP requests served, any status.
    pub http_requests: AtomicU64,
    /// hosbin frames served, any outcome.
    pub bin_requests: AtomicU64,
}

/// The attached durable store plus its checkpoint cadence. Only the
/// writer thread touches it after attach, but it lives behind a mutex
/// so `attach_store` can run before the threads exist.
struct StoreSlot {
    store: Option<Store>,
    snapshot_every: u64,
    writes_since_snapshot: u64,
    /// Stream counters (`base`, `oldest`, `rows_consumed`) recovered
    /// with the store, written back verbatim into every snapshot this
    /// server takes — serve does not advance them.
    carry: (u64, u64, u64),
}

/// EWMA of the query inter-arrival gap, updated on every admission.
#[derive(Default)]
struct ArrivalEwma {
    last: Option<Instant>,
    /// Smoothed gap in microseconds; `0.0` = no estimate yet.
    gap_us: f64,
}

/// EWMAs of batch execution cost, updated after every batch.
#[derive(Default)]
struct ExecEwma {
    /// Smoothed wall time of a single-job batch, microseconds.
    single_us: f64,
    /// Smoothed per-job marginal wall time inside a batch.
    marginal_us: f64,
}

/// Counting semaphore capping concurrent scans (per-endpoint queue
/// weights): waiting is bounded, then typed backpressure.
struct ScanGate {
    slots: Mutex<usize>,
    ready: Condvar,
}

/// EWMA smoothing factor for the adaptive-window cost model.
const EWMA_ALPHA: f64 = 0.2;
/// Smallest hold the batcher will bother sleeping for.
const MIN_HOLD_US: f64 = 20.0;
/// How long a scan waits for a permit before 429.
const SCAN_GATE_WAIT: Duration = Duration::from_millis(10);

fn ewma(prev: f64, sample: f64) -> f64 {
    if prev == 0.0 {
        sample
    } else {
        (1.0 - EWMA_ALPHA) * prev + EWMA_ALPHA * sample
    }
}

/// Everything the HTTP workers, batcher and writer share.
pub struct SharedState {
    miner: RwLock<HosMiner>,
    /// Bumped under the write lock on every successful mutation;
    /// queries report the version they observed.
    version: AtomicU64,
    draining: AtomicBool,
    query_queue: BoundedQueue<QueryJob>,
    write_queue: BoundedQueue<WriteJob>,
    batch_window: Duration,
    batch_max: usize,
    /// Adaptive batch windows: hold a non-full window open only while
    /// the expected marginal wait beats the expected batching gain.
    batch_adaptive: bool,
    arrival: Mutex<ArrivalEwma>,
    exec: Mutex<ExecEwma>,
    scan_gate: ScanGate,
    store: Mutex<StoreSlot>,
    /// Counters for `/stats` and the drain summary.
    pub counters: Counters,
}

impl SharedState {
    /// Wraps a fitted miner for serving. `scan_permits` caps
    /// concurrent scans (see [`SharedState::acquire_scan`]);
    /// `adaptive` selects the adaptive batch-window policy.
    pub fn new(
        miner: HosMiner,
        batch_window: Duration,
        batch_max: usize,
        query_queue_cap: usize,
        write_queue_cap: usize,
        adaptive: bool,
        scan_permits: usize,
    ) -> Arc<SharedState> {
        Arc::new(SharedState {
            miner: RwLock::new(miner),
            version: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            query_queue: BoundedQueue::new(query_queue_cap),
            write_queue: BoundedQueue::new(write_queue_cap),
            batch_window,
            batch_max: batch_max.max(1),
            batch_adaptive: adaptive,
            arrival: Mutex::new(ArrivalEwma::default()),
            exec: Mutex::new(ExecEwma::default()),
            scan_gate: ScanGate {
                slots: Mutex::new(scan_permits.max(1)),
                ready: Condvar::new(),
            },
            store: Mutex::new(StoreSlot {
                store: None,
                snapshot_every: u64::MAX,
                writes_since_snapshot: 0,
                carry: (0, 0, 0),
            }),
            counters: Counters::default(),
        })
    }

    /// Attaches a durable store (`--data-dir`): the writer thread logs
    /// every applied mutation to its WAL and checkpoints a snapshot
    /// every `snapshot_every` writes and at drain. `carry` preserves
    /// the stream counters recovered with the store.
    pub fn attach_store(&self, store: Store, snapshot_every: u64, carry: (u64, u64, u64)) {
        let mut slot = self.store.lock().expect("store lock poisoned");
        *slot = StoreSlot {
            store: Some(store),
            snapshot_every: snapshot_every.max(1),
            writes_since_snapshot: 0,
            carry,
        };
    }

    /// The current dataset version (number of applied writes).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Whether shutdown has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flips the draining flag and wakes both queue consumers so they
    /// can finish admitted work and exit.
    pub fn start_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.query_queue.wake_all();
        self.write_queue.wake_all();
        self.scan_gate.ready.notify_all();
    }

    /// Takes one scan permit, waiting at most [`SCAN_GATE_WAIT`]:
    /// the per-endpoint weight cap that keeps a burst of scans from
    /// occupying every worker thread. Timeout is typed backpressure
    /// (429), drain a typed 503. The permit releases on drop.
    pub fn acquire_scan(&self) -> Result<ScanPermit<'_>, ServeError> {
        let deadline = Instant::now() + SCAN_GATE_WAIT;
        let mut slots = self.scan_gate.slots.lock().expect("scan gate poisoned");
        while *slots == 0 {
            if self.is_draining() {
                return Err(ServeError::Draining);
            }
            let now = Instant::now();
            if now >= deadline {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Backpressure("scan"));
            }
            let (s, _timeout) = self
                .scan_gate
                .ready
                .wait_timeout(slots, deadline - now)
                .expect("scan gate poisoned");
            slots = s;
        }
        *slots -= 1;
        Ok(ScanPermit { state: self })
    }

    /// Runs `f` under the read lock — scans, explains, stats.
    pub fn with_read<R>(&self, f: impl FnOnce(&HosMiner, u64) -> R) -> R {
        let guard = self.miner.read().expect("miner lock poisoned");
        let version = self.version();
        f(&guard, version)
    }

    /// Admits a query request: enqueues its specs and blocks until the
    /// batcher replies. Returns the observed version and one result
    /// per spec, in input order.
    pub fn submit_query(
        &self,
        specs: Vec<QuerySpec>,
    ) -> Result<(u64, Vec<Result<QueryOutcome, HosError>>), ServeError> {
        if self.is_draining() {
            return Err(ServeError::Draining);
        }
        let (tx, rx) = mpsc::channel();
        self.query_queue
            .push(QueryJob { specs, reply: tx }, "query")
            .inspect_err(|_| {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            })?;
        self.note_arrival();
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        rx.recv()
            .map_err(|_| ServeError::Internal("batcher exited without replying"))
    }

    /// Admits a write: enqueues it for the single writer thread and
    /// blocks until it is applied. Returns the version the write
    /// produced (or, on a rejected write, the version it observed).
    pub fn submit_write(
        &self,
        op: WriteOp,
    ) -> Result<(u64, Result<WriteOk, HosError>), ServeError> {
        if self.is_draining() {
            return Err(ServeError::Draining);
        }
        let (tx, rx) = mpsc::channel();
        self.write_queue
            .push(WriteJob { op, reply: tx }, "write")
            .inspect_err(|_| {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            })?;
        rx.recv()
            .map_err(|_| ServeError::Internal("writer exited without replying"))
    }

    /// Records one admission for the arrival-rate EWMA.
    fn note_arrival(&self) {
        let mut a = self.arrival.lock().expect("arrival lock poisoned");
        let now = Instant::now();
        if let Some(last) = a.last {
            let gap = now.duration_since(last).as_secs_f64() * 1e6;
            a.gap_us = ewma(a.gap_us, gap);
        }
        a.last = Some(now);
    }

    /// Records one executed batch for the cost EWMAs.
    fn note_exec(&self, njobs: usize, elapsed: Duration) {
        let us = elapsed.as_secs_f64() * 1e6;
        let mut e = self.exec.lock().expect("exec lock poisoned");
        e.marginal_us = ewma(e.marginal_us, us / njobs.max(1) as f64);
        if njobs == 1 {
            e.single_us = ewma(e.single_us, us);
        }
    }

    /// The adaptive-window policy: with `njobs` already holding the
    /// window open, is one more expected inter-arrival gap of waiting
    /// cheaper than executing now? Batching gain per coalesced job is
    /// `single - marginal` (one whole batch execution amortized away);
    /// the cost is every held job waiting out the expected gap. Cold
    /// start (no estimates yet) and fixed mode never hold — identical
    /// to the close-when-dry policy the fixed window uses.
    fn profitable_hold(&self, njobs: usize, until_deadline: Duration) -> Option<Duration> {
        if !self.batch_adaptive {
            return None;
        }
        let (single, marginal) = {
            let e = self.exec.lock().expect("exec lock poisoned");
            (e.single_us, e.marginal_us)
        };
        if single <= 0.0 || marginal <= 0.0 {
            return None;
        }
        let gain = single - marginal;
        if gain <= 0.0 {
            return None;
        }
        let expected_wait_us = {
            let a = self.arrival.lock().expect("arrival lock poisoned");
            if a.gap_us <= 0.0 {
                return None;
            }
            let since_last = a.last.map_or(0.0, |l| l.elapsed().as_secs_f64() * 1e6);
            (a.gap_us - since_last).max(MIN_HOLD_US)
        };
        if njobs as f64 * expected_wait_us > gain {
            return None;
        }
        let hold = Duration::from_micros(expected_wait_us.ceil() as u64).min(until_deadline);
        (hold > Duration::ZERO).then_some(hold)
    }

    /// The batcher thread body: collect a window of admitted requests,
    /// execute them as ONE `query_each` batch under the read lock,
    /// scatter the results. Exits once draining AND the queue is empty.
    pub fn batcher_loop(self: &Arc<SharedState>) {
        loop {
            // Block until at least one job is admitted (or drain).
            let mut window: Vec<QueryJob> = Vec::new();
            {
                let mut q = self.query_queue.inner.lock().expect("queue poisoned");
                loop {
                    if let Some(job) = q.pop_front() {
                        window.push(job);
                        break;
                    }
                    if self.is_draining() {
                        return;
                    }
                    q = self.query_queue.ready.wait(q).expect("queue poisoned");
                }
            }
            // The window is open: keep admitting until it is full, the
            // deadline passes, or the queue runs dry. When the queue
            // is dry, fixed mode closes the window immediately — every
            // waiting client is blocked on a reply, so sleeping out
            // the deadline cannot attract more work, only add latency
            // (on one core it made batched throughput *lower* than
            // unbatched). Adaptive mode instead asks the cost model
            // whether one expected inter-arrival gap of extra wait is
            // cheaper than executing the current window now, and only
            // then sleeps — bounded by the `batch_window` deadline.
            // batch_max == 1 degenerates to unbatched execution.
            let deadline = Instant::now() + self.batch_window;
            let mut nspecs = window[0].specs.len();
            'fill: while nspecs < self.batch_max {
                {
                    let mut q = self.query_queue.inner.lock().expect("queue poisoned");
                    while nspecs < self.batch_max {
                        match q.pop_front() {
                            Some(job) => {
                                nspecs += job.specs.len();
                                window.push(job);
                            }
                            None => break,
                        }
                    }
                    if nspecs >= self.batch_max || self.is_draining() {
                        break 'fill;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break 'fill;
                    }
                    let Some(hold) = self.profitable_hold(window.len(), deadline - now) else {
                        break 'fill;
                    };
                    // Queue is dry and the model says waiting pays:
                    // sleep for one expected arrival (or a wakeup).
                    let (q2, _timeout) = self
                        .query_queue
                        .ready
                        .wait_timeout(q, hold)
                        .expect("queue poisoned");
                    drop(q2);
                }
                // Re-enter the drain loop; if nothing arrived the
                // deadline or the cost model will close the window.
            }
            // Execute the whole window as one batch. `version` is read
            // under the read lock, so it names exactly the state these
            // answers were computed from.
            let all: Vec<QuerySpec> = window.iter().flat_map(|j| j.specs.clone()).collect();
            let started = Instant::now();
            let (version, mut results) =
                self.with_read(|miner, version| (version, miner.query_each(&all).into_iter()));
            self.note_exec(window.len(), started.elapsed());
            self.counters.batches.fetch_add(1, Ordering::Relaxed);
            self.counters
                .specs
                .fetch_add(all.len() as u64, Ordering::Relaxed);
            self.counters
                .max_batch
                .fetch_max(all.len(), Ordering::Relaxed);
            for job in window {
                let part: Vec<_> = results.by_ref().take(job.specs.len()).collect();
                // A receiver that gave up (client gone) is fine.
                let _ = job.reply.send((version, part));
            }
        }
    }

    /// The single writer thread body: applies queued mutations one at
    /// a time under the write lock, bumping the version before the
    /// lock is released. With a store attached, every applied mutation
    /// is appended to the WAL before the client sees the reply
    /// (apply-then-log; this thread is the only appender, so log order
    /// equals apply order). Exits once draining AND the queue is
    /// empty, checkpointing a final snapshot on the way out.
    pub fn writer_loop(self: &Arc<SharedState>) {
        'serve: loop {
            let job = {
                let mut q = self.write_queue.inner.lock().expect("queue poisoned");
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    if self.is_draining() {
                        break 'serve;
                    }
                    q = self.write_queue.ready.wait(q).expect("queue poisoned");
                }
            };
            let mut miner = self.miner.write().expect("miner lock poisoned");
            let (res, logged) = match job.op {
                WriteOp::Insert(row) => {
                    let res = miner.insert_point(&row).map(WriteOk::Inserted);
                    (res, Op::Insert(row))
                }
                WriteOp::Retire(id) => (
                    miner.retire_point(id).map(|()| WriteOk::Retired),
                    Op::Retire(id as u64),
                ),
            };
            let version = if res.is_ok() {
                self.counters.writes.fetch_add(1, Ordering::Relaxed);
                self.version.fetch_add(1, Ordering::SeqCst) + 1
            } else {
                self.version()
            };
            drop(miner);
            if res.is_ok() {
                self.log_write(&logged);
            }
            let _ = job.reply.send((version, res));
        }
        self.checkpoint(true);
    }

    /// Appends one applied op to the attached WAL (group-committed per
    /// the store's `sync_every`) and checkpoints when the cadence is
    /// due. An append failure drains the server: refusing new writes
    /// beats acknowledging work that was never made durable.
    fn log_write(self: &Arc<SharedState>, op: &Op) {
        let due = {
            let mut slot = self.store.lock().expect("store lock poisoned");
            let Some(store) = slot.store.as_mut() else {
                return;
            };
            if let Err(e) = store.append(op) {
                eprintln!("hos-serve: wal append failed, draining: {e}");
                drop(slot);
                self.start_drain();
                return;
            }
            slot.writes_since_snapshot += 1;
            slot.writes_since_snapshot >= slot.snapshot_every
        };
        if due {
            self.checkpoint(false);
        }
    }

    /// Writes a snapshot of the current miner into the attached store
    /// (no-op without one). `final_sync` additionally fsyncs the WAL
    /// tail even if the snapshot fails — the drain path.
    pub fn checkpoint(self: &Arc<SharedState>, final_sync: bool) {
        let mut slot = self.store.lock().expect("store lock poisoned");
        let (base, oldest, rows_consumed) = slot.carry;
        let Some(store) = slot.store.as_mut() else {
            return;
        };
        let miner = self.miner.read().expect("miner lock poisoned");
        let model_text = ModelFile::from_miner(&miner).to_text();
        let result = store.snapshot(&SnapshotState {
            dataset: miner.engine().dataset(),
            model: Some(&model_text),
            base,
            oldest,
            rows_consumed,
            search_width: snapshot_search_width(&miner),
        });
        drop(miner);
        match result {
            Ok(_) => {
                println!("hos-serve snapshot: seq {}", store.last_seq());
            }
            Err(e) => eprintln!("hos-serve: snapshot failed: {e}"),
        }
        if final_sync {
            if let Err(e) = store.sync() {
                eprintln!("hos-serve: wal sync failed: {e}");
            }
        }
        slot.writes_since_snapshot = 0;
    }
}

/// RAII scan permit: releases its [`ScanGate`] slot on drop.
pub struct ScanPermit<'a> {
    state: &'a SharedState,
}

impl Drop for ScanPermit<'_> {
    fn drop(&mut self) {
        let mut slots = self
            .state
            .scan_gate
            .slots
            .lock()
            .expect("scan gate poisoned");
        *slots += 1;
        drop(slots);
        self.state.scan_gate.ready.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_core::{HosMinerConfig, ThresholdPolicy};
    use hos_data::Dataset;
    use std::thread;

    fn small_miner() -> HosMiner {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let x = (i % 7) as f64;
                let y = (i % 5) as f64;
                vec![x, y, x + y]
            })
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        HosMiner::fit(
            ds,
            HosMinerConfig {
                k: 3,
                threshold: ThresholdPolicy::Fixed(6.0),
                sample_size: 0,
                ..HosMinerConfig::default()
            },
        )
        .unwrap()
    }

    fn spawn_state(batch_max: usize) -> (Arc<SharedState>, Vec<thread::JoinHandle<()>>) {
        let state = SharedState::new(
            small_miner(),
            Duration::from_millis(2),
            batch_max,
            64,
            64,
            true,
            1,
        );
        let b = {
            let s = Arc::clone(&state);
            thread::spawn(move || s.batcher_loop())
        };
        let w = {
            let s = Arc::clone(&state);
            thread::spawn(move || s.writer_loop())
        };
        (state, vec![b, w])
    }

    fn drain(state: &Arc<SharedState>, handles: Vec<thread::JoinHandle<()>>) {
        state.start_drain();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn batched_queries_match_direct_query_each() {
        let (state, handles) = spawn_state(64);
        let solo = state.with_read(|m, _| m.query_id(0).unwrap());
        let (version, results) = state
            .submit_query(vec![QuerySpec::Member(0), QuerySpec::Member(1)])
            .unwrap();
        assert_eq!(version, 0);
        assert_eq!(results.len(), 2);
        let got = results[0].as_ref().unwrap();
        assert_eq!(got.outlying, solo.outlying);
        assert_eq!(got.minimal, solo.minimal);
        drain(&state, handles);
    }

    #[test]
    fn writes_bump_version_and_queries_observe_it() {
        let (state, handles) = spawn_state(64);
        let (v1, res) = state
            .submit_write(WriteOp::Insert(vec![100.0, 100.0, 100.0]))
            .unwrap();
        assert_eq!(v1, 1);
        let id = match res.unwrap() {
            WriteOk::Inserted(id) => id,
            other => panic!("expected insert, got {other:?}"),
        };
        let (v2, results) = state.submit_query(vec![QuerySpec::Member(id)]).unwrap();
        assert_eq!(v2, 1);
        assert!(results[0].is_ok());
        let (v3, res) = state.submit_write(WriteOp::Retire(id)).unwrap();
        assert_eq!(v3, 2);
        assert!(res.is_ok());
        // A failed write does not bump the version.
        let (v4, res) = state.submit_write(WriteOp::Retire(id)).unwrap();
        assert_eq!(v4, 2);
        assert!(res.is_err());
        drain(&state, handles);
    }

    #[test]
    fn draining_refuses_new_work_but_serves_admitted() {
        let (state, handles) = spawn_state(64);
        state.start_drain();
        assert!(matches!(
            state.submit_query(vec![QuerySpec::Member(0)]),
            Err(ServeError::Draining)
        ));
        assert!(matches!(
            state.submit_write(WriteOp::Retire(0)),
            Err(ServeError::Draining)
        ));
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn full_query_queue_is_backpressure_not_blocking() {
        // No batcher thread running: the queue only fills.
        let state = SharedState::new(small_miner(), Duration::from_millis(1), 8, 2, 2, true, 1);
        let (tx, _rx) = mpsc::channel();
        for _ in 0..2 {
            state
                .query_queue
                .push(
                    QueryJob {
                        specs: vec![QuerySpec::Member(0)],
                        reply: tx.clone(),
                    },
                    "query",
                )
                .unwrap();
        }
        assert!(matches!(
            state.submit_query(vec![QuerySpec::Member(0)]),
            Err(ServeError::Backpressure("query"))
        ));
        assert_eq!(state.counters.rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_submitters_all_get_answers() {
        let (state, handles) = spawn_state(16);
        let mut joins = Vec::new();
        for i in 0..8 {
            let s = Arc::clone(&state);
            joins.push(thread::spawn(move || {
                let (_, results) = s.submit_query(vec![QuerySpec::Member(i % 4)]).unwrap();
                assert_eq!(results.len(), 1);
                assert!(results[0].is_ok());
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let batches = state.counters.batches.load(Ordering::Relaxed);
        let specs = state.counters.specs.load(Ordering::Relaxed);
        assert_eq!(specs, 8);
        assert!((1..=8).contains(&batches));
        drain(&state, handles);
    }

    #[test]
    fn scan_gate_bounds_concurrency_then_backpressures() {
        let state = SharedState::new(small_miner(), Duration::from_millis(1), 8, 8, 8, true, 1);
        let permit = state.acquire_scan().unwrap();
        // The single slot is held: a second acquire waits out the
        // bounded gate and comes back as typed backpressure.
        match state.acquire_scan() {
            Err(ServeError::Backpressure("scan")) => {}
            Err(other) => panic!("expected scan backpressure, got {other:?}"),
            Ok(_) => panic!("expected scan backpressure, got a permit"),
        }
        assert_eq!(state.counters.rejected.load(Ordering::Relaxed), 1);
        drop(permit);
        // Slot released on drop: acquire succeeds again.
        let permit = state.acquire_scan().unwrap();
        drop(permit);
        // Draining turns waiting into a typed 503.
        let held = state.acquire_scan().unwrap();
        state.start_drain();
        assert!(matches!(state.acquire_scan(), Err(ServeError::Draining)));
        drop(held);
    }

    #[test]
    fn adaptive_policy_holds_only_when_the_model_says_it_pays() {
        let state = SharedState::new(small_miner(), Duration::from_millis(2), 8, 8, 8, true, 1);
        let budget = Duration::from_millis(2);
        // Cold start: no estimates, never hold (same as fixed mode).
        assert!(state.profitable_hold(1, budget).is_none());
        // Teach the model: single-job batches cost ~500us, marginal
        // ~50us, arrivals every ~100us → holding 1 job for ~100us
        // saves ~450us. Profitable.
        {
            let mut e = state.exec.lock().unwrap();
            e.single_us = 500.0;
            e.marginal_us = 50.0;
            let mut a = state.arrival.lock().unwrap();
            a.gap_us = 100.0;
            a.last = Some(Instant::now());
        }
        let hold = state.profitable_hold(1, budget).expect("should hold");
        assert!(hold <= budget);
        // 20 jobs already waiting: 20 x 100us of added latency beats
        // the 450us gain — close the window instead.
        assert!(state.profitable_hold(20, budget).is_none());
        // Arrivals slower than the gain: never hold.
        {
            let mut a = state.arrival.lock().unwrap();
            a.gap_us = 10_000.0;
            a.last = Some(Instant::now());
        }
        assert!(state.profitable_hold(1, budget).is_none());
        // Fixed mode ignores the model entirely.
        let fixed = SharedState::new(small_miner(), Duration::from_millis(2), 8, 8, 8, false, 1);
        {
            let mut e = fixed.exec.lock().unwrap();
            e.single_us = 500.0;
            e.marginal_us = 50.0;
            let mut a = fixed.arrival.lock().unwrap();
            a.gap_us = 100.0;
            a.last = Some(Instant::now());
        }
        assert!(fixed.profitable_hold(1, budget).is_none());
    }

    #[test]
    fn adaptive_batcher_still_answers_everything_under_load() {
        let (state, handles) = spawn_state(16);
        // Warm the cost model with sequential singles, then hammer.
        for _ in 0..4 {
            let (_, r) = state.submit_query(vec![QuerySpec::Member(0)]).unwrap();
            assert!(r[0].is_ok());
        }
        let mut joins = Vec::new();
        for i in 0..16 {
            let s = Arc::clone(&state);
            joins.push(thread::spawn(move || {
                let (_, results) = s.submit_query(vec![QuerySpec::Member(i % 4)]).unwrap();
                assert_eq!(results.len(), 1);
                assert!(results[0].is_ok());
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(state.counters.specs.load(Ordering::Relaxed), 20);
        drain(&state, handles);
    }
}
