//! Shared serving state: the miner behind a single-writer/many-reader
//! lock, the cross-request dynamic batcher and the write queue.
//!
//! Concurrency discipline (DESIGN.md §11):
//!
//! * **Reads** (query batches, scans, explains, stats) take the
//!   `RwLock` read side — any number run at once.
//! * **Writes** (insert/retire) go through a bounded queue drained by
//!   ONE writer thread that takes the write side, applies the
//!   mutation, and bumps [`SharedState::version`] *while still
//!   holding the lock*. A reader that loads `version` under the read
//!   lock therefore observes the state exactly as of that version —
//!   the serialization point the concurrency oracle replays against.
//! * **Query batching**: requests enqueue their [`QuerySpec`]s on a
//!   bounded admission queue; one batcher thread collects a window
//!   (first arrival opens it, it closes after `batch_window` or at
//!   `batch_max` specs) and drives the whole window through ONE
//!   [`HosMiner::query_each`] call — the same `batch_search` fan-out
//!   the CLI uses, so every answer is bit-identical to running that
//!   query alone.
//! * **Backpressure**: a full queue rejects immediately with a typed
//!   error the HTTP layer maps to 429; nothing blocks unboundedly.
//! * **Drain**: shutdown flips `draining` (new work is refused with a
//!   503-mapped error), wakes both queues, and the batcher/writer
//!   threads finish everything already admitted before exiting — no
//!   admitted request is ever dropped.

use hos_core::{HosError, HosMiner, ModelFile, QueryOutcome, QuerySpec};
use hos_data::PointId;
use hos_storage::store::SnapshotState;
use hos_storage::{snapshot_search_width, Op, Store};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Why the serving layer refused or failed a request before (or
/// while) the miner saw it.
#[derive(Debug)]
pub enum ServeError {
    /// The admission or write queue is full — try again later (429).
    Backpressure(&'static str),
    /// The server is draining and takes no new work (503).
    Draining,
    /// The executing thread disappeared without replying (500).
    Internal(&'static str),
}

impl ServeError {
    /// Stable tag for the JSON error envelope.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Backpressure(_) => "backpressure",
            ServeError::Draining => "draining",
            ServeError::Internal(_) => "internal",
        }
    }

    /// HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::Backpressure(_) => 429,
            ServeError::Draining => 503,
            ServeError::Internal(_) => 500,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Backpressure(which) => {
                write!(f, "{which} queue full, retry later")
            }
            ServeError::Draining => write!(f, "server is draining"),
            ServeError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

/// One admitted query request: its specs plus the channel its
/// response goes back on. The batcher replies with the version the
/// batch observed and one result per spec, in order.
struct QueryJob {
    specs: Vec<QuerySpec>,
    reply: mpsc::Sender<(u64, Vec<Result<QueryOutcome, HosError>>)>,
}

/// A mutation for the writer thread.
pub enum WriteOp {
    /// Insert a row, returning its new id.
    Insert(Vec<f64>),
    /// Retire a live point.
    Retire(PointId),
}

/// What a successful write produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOk {
    /// The id the inserted row received.
    Inserted(PointId),
    /// The retire completed.
    Retired,
}

struct WriteJob {
    op: WriteOp,
    reply: mpsc::Sender<(u64, Result<WriteOk, HosError>)>,
}

/// A bounded MPSC queue with condvar wakeups: `push` never blocks
/// (full = typed backpressure), consumers wait on the condvar.
struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    fn new(cap: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn push(&self, item: T, which: &'static str) -> Result<(), ServeError> {
        let mut q = self.inner.lock().expect("queue poisoned");
        if q.len() >= self.cap {
            return Err(ServeError::Backpressure(which));
        }
        q.push_back(item);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    fn wake_all(&self) {
        self.ready.notify_all();
    }
}

/// Monotonic counters exported by `/stats`.
#[derive(Default)]
pub struct Counters {
    /// Query requests admitted (each may carry several specs).
    pub queries: AtomicU64,
    /// Individual query specs executed.
    pub specs: AtomicU64,
    /// Batches the batcher executed.
    pub batches: AtomicU64,
    /// Largest spec count any single batch reached.
    pub max_batch: AtomicUsize,
    /// Writes applied (insert + retire).
    pub writes: AtomicU64,
    /// Requests refused with backpressure (429).
    pub rejected: AtomicU64,
    /// HTTP requests served, any status.
    pub http_requests: AtomicU64,
}

/// The attached durable store plus its checkpoint cadence. Only the
/// writer thread touches it after attach, but it lives behind a mutex
/// so `attach_store` can run before the threads exist.
struct StoreSlot {
    store: Option<Store>,
    snapshot_every: u64,
    writes_since_snapshot: u64,
    /// Stream counters (`base`, `oldest`, `rows_consumed`) recovered
    /// with the store, written back verbatim into every snapshot this
    /// server takes — serve does not advance them.
    carry: (u64, u64, u64),
}

/// Everything the HTTP workers, batcher and writer share.
pub struct SharedState {
    miner: RwLock<HosMiner>,
    /// Bumped under the write lock on every successful mutation;
    /// queries report the version they observed.
    version: AtomicU64,
    draining: AtomicBool,
    query_queue: BoundedQueue<QueryJob>,
    write_queue: BoundedQueue<WriteJob>,
    batch_window: Duration,
    batch_max: usize,
    store: Mutex<StoreSlot>,
    /// Counters for `/stats` and the drain summary.
    pub counters: Counters,
}

impl SharedState {
    /// Wraps a fitted miner for serving.
    pub fn new(
        miner: HosMiner,
        batch_window: Duration,
        batch_max: usize,
        query_queue_cap: usize,
        write_queue_cap: usize,
    ) -> Arc<SharedState> {
        Arc::new(SharedState {
            miner: RwLock::new(miner),
            version: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            query_queue: BoundedQueue::new(query_queue_cap),
            write_queue: BoundedQueue::new(write_queue_cap),
            batch_window,
            batch_max: batch_max.max(1),
            store: Mutex::new(StoreSlot {
                store: None,
                snapshot_every: u64::MAX,
                writes_since_snapshot: 0,
                carry: (0, 0, 0),
            }),
            counters: Counters::default(),
        })
    }

    /// Attaches a durable store (`--data-dir`): the writer thread logs
    /// every applied mutation to its WAL and checkpoints a snapshot
    /// every `snapshot_every` writes and at drain. `carry` preserves
    /// the stream counters recovered with the store.
    pub fn attach_store(&self, store: Store, snapshot_every: u64, carry: (u64, u64, u64)) {
        let mut slot = self.store.lock().expect("store lock poisoned");
        *slot = StoreSlot {
            store: Some(store),
            snapshot_every: snapshot_every.max(1),
            writes_since_snapshot: 0,
            carry,
        };
    }

    /// The current dataset version (number of applied writes).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Whether shutdown has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flips the draining flag and wakes both queue consumers so they
    /// can finish admitted work and exit.
    pub fn start_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.query_queue.wake_all();
        self.write_queue.wake_all();
    }

    /// Runs `f` under the read lock — scans, explains, stats.
    pub fn with_read<R>(&self, f: impl FnOnce(&HosMiner, u64) -> R) -> R {
        let guard = self.miner.read().expect("miner lock poisoned");
        let version = self.version();
        f(&guard, version)
    }

    /// Admits a query request: enqueues its specs and blocks until the
    /// batcher replies. Returns the observed version and one result
    /// per spec, in input order.
    pub fn submit_query(
        &self,
        specs: Vec<QuerySpec>,
    ) -> Result<(u64, Vec<Result<QueryOutcome, HosError>>), ServeError> {
        if self.is_draining() {
            return Err(ServeError::Draining);
        }
        let (tx, rx) = mpsc::channel();
        self.query_queue
            .push(QueryJob { specs, reply: tx }, "query")
            .inspect_err(|_| {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            })?;
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        rx.recv()
            .map_err(|_| ServeError::Internal("batcher exited without replying"))
    }

    /// Admits a write: enqueues it for the single writer thread and
    /// blocks until it is applied. Returns the version the write
    /// produced (or, on a rejected write, the version it observed).
    pub fn submit_write(
        &self,
        op: WriteOp,
    ) -> Result<(u64, Result<WriteOk, HosError>), ServeError> {
        if self.is_draining() {
            return Err(ServeError::Draining);
        }
        let (tx, rx) = mpsc::channel();
        self.write_queue
            .push(WriteJob { op, reply: tx }, "write")
            .inspect_err(|_| {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            })?;
        rx.recv()
            .map_err(|_| ServeError::Internal("writer exited without replying"))
    }

    /// The batcher thread body: collect a window of admitted requests,
    /// execute them as ONE `query_each` batch under the read lock,
    /// scatter the results. Exits once draining AND the queue is empty.
    pub fn batcher_loop(self: &Arc<SharedState>) {
        loop {
            // Block until at least one job is admitted (or drain).
            let mut window: Vec<QueryJob> = Vec::new();
            {
                let mut q = self.query_queue.inner.lock().expect("queue poisoned");
                loop {
                    if let Some(job) = q.pop_front() {
                        window.push(job);
                        break;
                    }
                    if self.is_draining() {
                        return;
                    }
                    q = self.query_queue.ready.wait(q).expect("queue poisoned");
                }
            }
            // The window is open: keep admitting until it is full, the
            // deadline passes, or the queue runs dry. An empty queue
            // closes the window immediately — every waiting client is
            // blocked on a reply, so sleeping out the deadline cannot
            // attract more work, only add latency (on one core it made
            // batched throughput *lower* than unbatched). batch_max ==
            // 1 degenerates to unbatched execution.
            let deadline = Instant::now() + self.batch_window;
            let mut nspecs = window[0].specs.len();
            while nspecs < self.batch_max && Instant::now() < deadline {
                let mut q = self.query_queue.inner.lock().expect("queue poisoned");
                match q.pop_front() {
                    Some(job) => {
                        nspecs += job.specs.len();
                        window.push(job);
                    }
                    None => break,
                }
            }
            // Execute the whole window as one batch. `version` is read
            // under the read lock, so it names exactly the state these
            // answers were computed from.
            let all: Vec<QuerySpec> = window.iter().flat_map(|j| j.specs.clone()).collect();
            let (version, mut results) =
                self.with_read(|miner, version| (version, miner.query_each(&all).into_iter()));
            self.counters.batches.fetch_add(1, Ordering::Relaxed);
            self.counters
                .specs
                .fetch_add(all.len() as u64, Ordering::Relaxed);
            self.counters
                .max_batch
                .fetch_max(all.len(), Ordering::Relaxed);
            for job in window {
                let part: Vec<_> = results.by_ref().take(job.specs.len()).collect();
                // A receiver that gave up (client gone) is fine.
                let _ = job.reply.send((version, part));
            }
        }
    }

    /// The single writer thread body: applies queued mutations one at
    /// a time under the write lock, bumping the version before the
    /// lock is released. With a store attached, every applied mutation
    /// is appended to the WAL before the client sees the reply
    /// (apply-then-log; this thread is the only appender, so log order
    /// equals apply order). Exits once draining AND the queue is
    /// empty, checkpointing a final snapshot on the way out.
    pub fn writer_loop(self: &Arc<SharedState>) {
        'serve: loop {
            let job = {
                let mut q = self.write_queue.inner.lock().expect("queue poisoned");
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    if self.is_draining() {
                        break 'serve;
                    }
                    q = self.write_queue.ready.wait(q).expect("queue poisoned");
                }
            };
            let mut miner = self.miner.write().expect("miner lock poisoned");
            let (res, logged) = match job.op {
                WriteOp::Insert(row) => {
                    let res = miner.insert_point(&row).map(WriteOk::Inserted);
                    (res, Op::Insert(row))
                }
                WriteOp::Retire(id) => (
                    miner.retire_point(id).map(|()| WriteOk::Retired),
                    Op::Retire(id as u64),
                ),
            };
            let version = if res.is_ok() {
                self.counters.writes.fetch_add(1, Ordering::Relaxed);
                self.version.fetch_add(1, Ordering::SeqCst) + 1
            } else {
                self.version()
            };
            drop(miner);
            if res.is_ok() {
                self.log_write(&logged);
            }
            let _ = job.reply.send((version, res));
        }
        self.checkpoint(true);
    }

    /// Appends one applied op to the attached WAL (group-committed per
    /// the store's `sync_every`) and checkpoints when the cadence is
    /// due. An append failure drains the server: refusing new writes
    /// beats acknowledging work that was never made durable.
    fn log_write(self: &Arc<SharedState>, op: &Op) {
        let due = {
            let mut slot = self.store.lock().expect("store lock poisoned");
            let Some(store) = slot.store.as_mut() else {
                return;
            };
            if let Err(e) = store.append(op) {
                eprintln!("hos-serve: wal append failed, draining: {e}");
                drop(slot);
                self.start_drain();
                return;
            }
            slot.writes_since_snapshot += 1;
            slot.writes_since_snapshot >= slot.snapshot_every
        };
        if due {
            self.checkpoint(false);
        }
    }

    /// Writes a snapshot of the current miner into the attached store
    /// (no-op without one). `final_sync` additionally fsyncs the WAL
    /// tail even if the snapshot fails — the drain path.
    pub fn checkpoint(self: &Arc<SharedState>, final_sync: bool) {
        let mut slot = self.store.lock().expect("store lock poisoned");
        let (base, oldest, rows_consumed) = slot.carry;
        let Some(store) = slot.store.as_mut() else {
            return;
        };
        let miner = self.miner.read().expect("miner lock poisoned");
        let model_text = ModelFile::from_miner(&miner).to_text();
        let result = store.snapshot(&SnapshotState {
            dataset: miner.engine().dataset(),
            model: Some(&model_text),
            base,
            oldest,
            rows_consumed,
            search_width: snapshot_search_width(&miner),
        });
        drop(miner);
        match result {
            Ok(_) => {
                println!("hos-serve snapshot: seq {}", store.last_seq());
            }
            Err(e) => eprintln!("hos-serve: snapshot failed: {e}"),
        }
        if final_sync {
            if let Err(e) = store.sync() {
                eprintln!("hos-serve: wal sync failed: {e}");
            }
        }
        slot.writes_since_snapshot = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_core::{HosMinerConfig, ThresholdPolicy};
    use hos_data::Dataset;
    use std::thread;

    fn small_miner() -> HosMiner {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let x = (i % 7) as f64;
                let y = (i % 5) as f64;
                vec![x, y, x + y]
            })
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        HosMiner::fit(
            ds,
            HosMinerConfig {
                k: 3,
                threshold: ThresholdPolicy::Fixed(6.0),
                sample_size: 0,
                ..HosMinerConfig::default()
            },
        )
        .unwrap()
    }

    fn spawn_state(batch_max: usize) -> (Arc<SharedState>, Vec<thread::JoinHandle<()>>) {
        let state = SharedState::new(small_miner(), Duration::from_millis(2), batch_max, 64, 64);
        let b = {
            let s = Arc::clone(&state);
            thread::spawn(move || s.batcher_loop())
        };
        let w = {
            let s = Arc::clone(&state);
            thread::spawn(move || s.writer_loop())
        };
        (state, vec![b, w])
    }

    fn drain(state: &Arc<SharedState>, handles: Vec<thread::JoinHandle<()>>) {
        state.start_drain();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn batched_queries_match_direct_query_each() {
        let (state, handles) = spawn_state(64);
        let solo = state.with_read(|m, _| m.query_id(0).unwrap());
        let (version, results) = state
            .submit_query(vec![QuerySpec::Member(0), QuerySpec::Member(1)])
            .unwrap();
        assert_eq!(version, 0);
        assert_eq!(results.len(), 2);
        let got = results[0].as_ref().unwrap();
        assert_eq!(got.outlying, solo.outlying);
        assert_eq!(got.minimal, solo.minimal);
        drain(&state, handles);
    }

    #[test]
    fn writes_bump_version_and_queries_observe_it() {
        let (state, handles) = spawn_state(64);
        let (v1, res) = state
            .submit_write(WriteOp::Insert(vec![100.0, 100.0, 100.0]))
            .unwrap();
        assert_eq!(v1, 1);
        let id = match res.unwrap() {
            WriteOk::Inserted(id) => id,
            other => panic!("expected insert, got {other:?}"),
        };
        let (v2, results) = state.submit_query(vec![QuerySpec::Member(id)]).unwrap();
        assert_eq!(v2, 1);
        assert!(results[0].is_ok());
        let (v3, res) = state.submit_write(WriteOp::Retire(id)).unwrap();
        assert_eq!(v3, 2);
        assert!(res.is_ok());
        // A failed write does not bump the version.
        let (v4, res) = state.submit_write(WriteOp::Retire(id)).unwrap();
        assert_eq!(v4, 2);
        assert!(res.is_err());
        drain(&state, handles);
    }

    #[test]
    fn draining_refuses_new_work_but_serves_admitted() {
        let (state, handles) = spawn_state(64);
        state.start_drain();
        assert!(matches!(
            state.submit_query(vec![QuerySpec::Member(0)]),
            Err(ServeError::Draining)
        ));
        assert!(matches!(
            state.submit_write(WriteOp::Retire(0)),
            Err(ServeError::Draining)
        ));
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn full_query_queue_is_backpressure_not_blocking() {
        // No batcher thread running: the queue only fills.
        let state = SharedState::new(small_miner(), Duration::from_millis(1), 8, 2, 2);
        let (tx, _rx) = mpsc::channel();
        for _ in 0..2 {
            state
                .query_queue
                .push(
                    QueryJob {
                        specs: vec![QuerySpec::Member(0)],
                        reply: tx.clone(),
                    },
                    "query",
                )
                .unwrap();
        }
        assert!(matches!(
            state.submit_query(vec![QuerySpec::Member(0)]),
            Err(ServeError::Backpressure("query"))
        ));
        assert_eq!(state.counters.rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_submitters_all_get_answers() {
        let (state, handles) = spawn_state(16);
        let mut joins = Vec::new();
        for i in 0..8 {
            let s = Arc::clone(&state);
            joins.push(thread::spawn(move || {
                let (_, results) = s.submit_query(vec![QuerySpec::Member(i % 4)]).unwrap();
                assert_eq!(results.len(), 1);
                assert!(results[0].is_ok());
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let batches = state.counters.batches.load(Ordering::Relaxed);
        let specs = state.counters.specs.load(Ordering::Relaxed);
        assert_eq!(specs, 8);
        assert!((1..=8).contains(&batches));
        drain(&state, handles);
    }
}
