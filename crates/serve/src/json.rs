//! Minimal dependency-free JSON: enough for the serve protocol.
//!
//! The environment has no serde, so this module hand-rolls the two
//! halves the server needs: a recursive-descent parser for request
//! bodies ([`Json::parse`]) and an escaping renderer for responses
//! ([`Json::render`] plus the `fmt_*` helpers used by handlers that
//! format straight into strings).
//!
//! Numbers are `f64`. Rust's `{}` formatting for `f64` is the
//! shortest representation that **round-trips bit-exactly** through
//! `str::parse::<f64>`, which is what makes the serve protocol's
//! bit-identity contract possible: the server formats an OD with
//! [`fmt_f64_roundtrip`], the oracle parses it back, and equality is
//! `==` on the bits, not "close enough". Non-finite values render as
//! `null` (JSON has no NaN/inf).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys: last wins on
    /// lookup is NOT implemented — first match wins, duplicates are
    /// harmless for this protocol).
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset + message.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What was expected or found.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth cap: arbitrary hostile input ("[[[[[…") must not
/// overflow the parser stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            msg: msg.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => {
                if self.eat_lit("null") {
                    Ok(Json::Null)
                } else {
                    self.err("bad literal")
                }
            }
            Some(b't') => {
                if self.eat_lit("true") {
                    Ok(Json::Bool(true))
                } else {
                    self.err("bad literal")
                }
            }
            Some(b'f') => {
                if self.eat_lit("false") {
                    Ok(Json::Bool(false))
                } else {
                    self.err("bad literal")
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => self.err(format!("unexpected byte {:?}", b as char)),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("bad \\u escape");
                            };
                            self.pos += 4;
                            // Surrogate pairs are rejected rather than
                            // combined — the serve protocol is ASCII.
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u code point"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => {
                    // Re-sync on UTF-8: take the whole code point.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let Some(chunk) = self.bytes.get(start..end) else {
                        return self.err("truncated utf-8");
                    };
                    match std::str::from_utf8(chunk) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return self.err("invalid utf-8 in string"),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            Ok(_) => self.err("non-finite number"),
            Err(_) => self.err(format!("bad number {text:?}")),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing bytes after value");
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer accessor (rejects fractions).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                let _ = write!(out, "{}", fmt_f64_roundtrip(*v));
            }
            Json::Str(s) => push_json_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_string(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Formats an `f64` so that parsing the text back yields the same
/// bits (Rust's shortest round-trip `Display`); non-finite → `null`.
pub fn fmt_f64_roundtrip(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `{"error":{"kind":K,"message":M}}` — the one error envelope every
/// non-2xx serve response uses.
pub fn error_body(kind: &str, message: &str) -> String {
    let mut out = String::from("{\"error\":{\"kind\":");
    push_json_string(&mut out, kind);
    out.push_str(",\"message\":");
    push_json_string(&mut out, message);
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
        let v = Json::parse(r#"{"ids":[1,2,3],"point":[0.5,-1.0],"top":5}"#).unwrap();
        assert_eq!(v.get("top").unwrap().as_usize(), Some(5));
        assert_eq!(v.get("ids").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("point").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-1.0)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input_with_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1,}",
            "nan",
            "1e999",
            "\"\\q\"",
            "--1",
        ] {
            let e = Json::parse(bad).unwrap_err();
            assert!(!e.to_string().is_empty(), "no message for {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded_not_a_stack_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            123456.789e-12,
            2.0f64.powi(60) + 12345.0,
            -0.0,
        ] {
            let text = fmt_f64_roundtrip(v);
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {text}");
            // …and through the full parser too.
            let parsed = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits());
        }
        assert_eq!(fmt_f64_roundtrip(f64::NAN), "null");
        assert_eq!(fmt_f64_roundtrip(f64::INFINITY), "null");
    }

    #[test]
    fn render_escapes_and_round_trips() {
        let v = Json::Obj(vec![
            ("k\"ey".to_string(), Json::Str("a\\b\nc\u{1}".to_string())),
            ("n".to_string(), Json::Num(0.1)),
            (
                "arr".to_string(),
                Json::Arr(vec![Json::Null, Json::Bool(false)]),
            ),
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn usize_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("5").unwrap().as_usize(), Some(5));
        assert_eq!(Json::parse("5.5").unwrap().as_usize(), None);
        assert_eq!(Json::parse("-1").unwrap().as_usize(), None);
        assert_eq!(Json::parse("\"5\"").unwrap().as_usize(), None);
    }

    #[test]
    fn error_body_shape() {
        let b = error_body("backpressure", "query queue full (1024)");
        let v = Json::parse(&b).unwrap();
        let e = v.get("error").unwrap();
        assert_eq!(e.get("kind").unwrap().as_str(), Some("backpressure"));
        assert!(e.get("message").unwrap().as_str().unwrap().contains("1024"));
    }
}
