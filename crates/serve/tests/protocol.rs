//! Protocol robustness: arbitrary byte soup, malformed JSON and
//! truncated requests must produce typed errors — never a panic, and
//! never a wedged server.
//!
//! Two layers: the pure parser ([`tinyhttp::read_request`]) is
//! property-tested directly over arbitrary bytes, and a live server
//! is hammered over real sockets, checking after every hostile
//! exchange that it still answers `/healthz`.

use hos_core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_data::Dataset;
use hos_serve::{Json, ServeConfig, Server};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;
use tinyhttp::{client_request, read_request, Limits};

/// One shared live server for every socket-level case (leaked for the
/// test process lifetime — each case re-verifies it is healthy).
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64, (i % 3) as f64])
            .collect();
        let miner = HosMiner::fit(
            Dataset::from_rows(&rows).unwrap(),
            HosMinerConfig {
                k: 3,
                threshold: ThresholdPolicy::Fixed(5.0),
                sample_size: 0,
                ..HosMinerConfig::default()
            },
        )
        .unwrap();
        let server = Server::start(
            miner,
            &ServeConfig {
                workers: 2,
                batch_window: Duration::from_millis(1),
                batch_max: 8,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        std::mem::forget(server); // keep serving until process exit
        addr
    })
}

fn healthz_ok(addr: SocketAddr) -> bool {
    matches!(client_request(addr, "GET", "/healthz", b""), Ok((200, _)))
}

/// Sends raw bytes, half-closes, reads whatever comes back.
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The pure request parser accepts arbitrary bytes without
    /// panicking: every outcome is a request, a clean EOF, or a
    /// typed error with a stable kind and a 4xx/5xx status.
    #[test]
    fn read_request_never_panics(bytes in prop::collection::vec(0u8..=255, 0..300)) {
        let mut cursor = std::io::Cursor::new(bytes);
        match read_request(&mut cursor, &Limits::default()) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(!e.kind().is_empty());
                prop_assert!((400..=599).contains(&e.status()));
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// Tiny limits are honoured on arbitrary input too.
    #[test]
    fn read_request_respects_limits(bytes in prop::collection::vec(0u8..=255, 0..300)) {
        let limits = Limits { max_head: 32, max_body: 16 };
        let mut cursor = std::io::Cursor::new(bytes);
        if let Ok(Some(req)) = read_request(&mut cursor, &limits) {
            prop_assert!(req.body.len() <= 16);
        }
    }
}

proptest! {
    // Socket-level cases are slower; fewer of them.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary byte soup on a live socket: the server answers with
    /// an HTTP error (or closes on silence) and stays healthy.
    #[test]
    fn byte_soup_does_not_wedge_the_server(bytes in prop::collection::vec(0u8..=255, 0..200)) {
        let addr = server_addr();
        let raw = send_raw(addr, &bytes);
        if !raw.is_empty() && !bytes.starts_with(&tinyhttp::bin::MAGIC) {
            // Whatever came back is a well-formed HTTP response. (Soup
            // opening with the exact hosbin preamble negotiates the
            // binary protocol instead and gets framed errors — that
            // path has its own property suite in bin_protocol.rs.)
            prop_assert!(raw.starts_with(b"HTTP/1.1 "), "{:?}", &raw[..raw.len().min(20)]);
        }
        prop_assert!(healthz_ok(addr), "server wedged after {} bytes", bytes.len());
    }

    /// Malformed JSON bodies on a valid HTTP request: always a 400
    /// with the typed envelope, never a panic.
    #[test]
    fn malformed_json_is_typed_400(
        body in prop::collection::vec(0x20u8..=0x7e, 0..60)
            .prop_map(|b| String::from_utf8(b).expect("printable ascii")),
    ) {
        // Skip the rare case where the fuzz string is valid JSON with
        // a valid spec — that legitimately answers 200.
        let addr = server_addr();
        let head = format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        let mut raw = head.into_bytes();
        raw.extend_from_slice(body.as_bytes());
        let resp = send_raw(addr, &raw);
        let (status, resp_body) = tinyhttp::parse_client_response(&resp).unwrap();
        if status != 200 {
            prop_assert!(status == 400 || status == 422, "status {status} for {body:?}");
            let v = Json::parse(std::str::from_utf8(&resp_body).unwrap()).unwrap();
            let kind = v.get("error").unwrap().get("kind").unwrap().as_str().unwrap();
            prop_assert!(
                ["bad_json", "bad_request", "query", "config", "index", "data"]
                    .contains(&kind),
                "unexpected kind {kind:?}"
            );
        }
        prop_assert!(healthz_ok(addr));
    }

    /// Truncated requests (body shorter than Content-Length, or a cut
    /// head): typed error or clean close, server stays healthy.
    #[test]
    fn truncated_requests_do_not_wedge(cut in 1usize..60) {
        let addr = server_addr();
        let full = b"POST /query HTTP/1.1\r\nContent-Length: 20\r\n\r\n{\"id\":0}".to_vec();
        let cut = cut.min(full.len());
        let raw = send_raw(addr, &full[..cut]);
        if let Some((status, _)) = tinyhttp::parse_client_response(&raw) {
            prop_assert!((400..=599).contains(&status));
        }
        prop_assert!(healthz_ok(addr));
    }
}

/// Deterministic spot-checks of the hostile cases the fuzz above
/// covers statistically.
#[test]
fn hostile_requests_get_typed_errors() {
    let addr = server_addr();
    for (raw, expect) in [
        (&b"NONSENSE\r\n\r\n"[..], 400u16),
        (b"GET / HTTP/9.9\r\n\r\n", 505),
        (
            b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            501,
        ),
        (
            b"POST /query HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            400,
        ),
        (
            b"POST /query HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
            413,
        ),
    ] {
        let resp = send_raw(addr, raw);
        let (status, body) = tinyhttp::parse_client_response(&resp)
            .unwrap_or_else(|| panic!("no response for {raw:?}"));
        assert_eq!(status, expect, "for {raw:?}");
        let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert!(v
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str()
            .is_some());
    }
    // An oversized head (64 KiB of header) is cut off with 431.
    let mut huge = b"GET /healthz HTTP/1.1\r\nX-Pad: ".to_vec();
    huge.extend(std::iter::repeat_n(b'a', 64 * 1024));
    let resp = send_raw(addr, &huge);
    if let Some((status, _)) = tinyhttp::parse_client_response(&resp) {
        assert_eq!(status, 431);
    }
    assert!(healthz_ok(addr));
}
