//! End-to-end endpoint coverage over real sockets: every route, the
//! error envelope, and graceful drain.

use hos_core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_data::synth::planted::{generate, PlantedSpec};
use hos_data::Subspace;
use hos_serve::{Json, ServeConfig, Server};
use std::time::Duration;
use tinyhttp::client_request;

fn fitted_miner() -> HosMiner {
    let spec = PlantedSpec {
        n_background: 200,
        d: 4,
        n_clusters: 2,
        cluster_sigma: 1.0,
        extent: 50.0,
        targets: vec![Subspace::from_dims(&[0, 1])],
        shift_sigmas: 12.0,
        seed: 42,
    };
    let w = generate(&spec).unwrap();
    HosMiner::fit(
        w.dataset,
        HosMinerConfig {
            k: 4,
            threshold: ThresholdPolicy::FullSpaceQuantile {
                q: 0.95,
                sample: 100,
            },
            sample_size: 10,
            ..HosMinerConfig::default()
        },
    )
    .unwrap()
}

fn start() -> Server {
    Server::start(
        fitted_miner(),
        &ServeConfig {
            workers: 2,
            batch_window: Duration::from_millis(1),
            batch_max: 16,
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

fn json(body: &[u8]) -> Json {
    Json::parse(std::str::from_utf8(body).unwrap()).unwrap()
}

#[test]
fn every_endpoint_round_trips() {
    let server = start();
    let addr = server.addr();

    // healthz
    let (status, body) = client_request(addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 200);
    assert_eq!(json(&body).get("ok").unwrap().as_bool(), Some(true));

    // query by id
    let (status, body) = client_request(addr, "POST", "/query", br#"{"id":0}"#).unwrap();
    assert_eq!(status, 200);
    let v = json(&body);
    assert_eq!(v.get("version").unwrap().as_usize(), Some(0));
    assert_eq!(v.get("results").unwrap().as_array().unwrap().len(), 1);

    // mixed query: ids + point + a per-item error (dead id) — the
    // bad item fails alone, its batch-mates answer normally.
    let (status, body) = client_request(
        addr,
        "POST",
        "/query",
        br#"{"ids":[1,99999],"point":[0,0,0,0]}"#,
    )
    .unwrap();
    assert_eq!(status, 200);
    let results = json(&body);
    let results = results.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 3);
    assert!(results[0].get("minimal").is_some());
    assert_eq!(
        results[1]
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("query")
    );
    assert!(results[2].get("minimal").is_some());

    // scan
    let (status, body) = client_request(addr, "POST", "/scan", br#"{"top":3}"#).unwrap();
    assert_eq!(status, 200);
    let v = json(&body);
    assert!(v.get("threshold").unwrap().as_f64().is_some());
    assert!(v.get("hits").unwrap().as_array().unwrap().len() <= 3);

    // insert bumps the version and returns the new id
    let (status, body) =
        client_request(addr, "POST", "/insert", br#"{"row":[100,100,100,100]}"#).unwrap();
    assert_eq!(status, 200);
    let v = json(&body);
    assert_eq!(v.get("version").unwrap().as_usize(), Some(1));
    let id = v.get("id").unwrap().as_usize().unwrap();

    // the inserted point is queryable and clearly outlying
    let req = format!("{{\"id\":{id}}}");
    let (status, body) = client_request(addr, "POST", "/query", req.as_bytes()).unwrap();
    assert_eq!(status, 200);
    let v = json(&body);
    assert_eq!(v.get("version").unwrap().as_usize(), Some(1));
    let r = &v.get("results").unwrap().as_array().unwrap()[0];
    assert!(!r.get("minimal").unwrap().as_array().unwrap().is_empty());

    // explain
    let req = format!("{{\"id\":{id}}}");
    let (status, body) = client_request(addr, "POST", "/explain", req.as_bytes()).unwrap();
    assert_eq!(status, 200);
    let v = json(&body);
    assert_eq!(v.get("deviations").unwrap().as_array().unwrap().len(), 4);
    assert!(!v.get("subspaces").unwrap().as_array().unwrap().is_empty());

    // retire
    let req = format!("{{\"id\":{id}}}");
    let (status, body) = client_request(addr, "POST", "/retire", req.as_bytes()).unwrap();
    assert_eq!(status, 200);
    assert_eq!(json(&body).get("version").unwrap().as_usize(), Some(2));

    // retiring again is a typed 422 (dead point)
    let (status, body) = client_request(addr, "POST", "/retire", req.as_bytes()).unwrap();
    assert_eq!(status, 422);
    assert_eq!(
        json(&body)
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("index")
    );

    // stats reflects everything
    let (status, body) = client_request(addr, "GET", "/stats", b"").unwrap();
    assert_eq!(status, 200);
    let v = json(&body);
    assert_eq!(v.get("version").unwrap().as_usize(), Some(2));
    assert_eq!(v.get("writes").unwrap().as_usize(), Some(2));
    assert!(v.get("specs").unwrap().as_usize().unwrap() >= 4);
    assert_eq!(v.get("draining").unwrap().as_bool(), Some(false));

    // error envelope: bad json, bad request, unknown route, bad method
    let (status, body) = client_request(addr, "POST", "/query", b"{not json").unwrap();
    assert_eq!(status, 400);
    assert_eq!(
        json(&body)
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("bad_json")
    );
    let (status, body) = client_request(addr, "POST", "/query", b"{}").unwrap();
    assert_eq!(status, 400);
    assert_eq!(
        json(&body)
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("bad_request")
    );
    let (status, _) = client_request(addr, "POST", "/nope", b"{}").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client_request(addr, "DELETE", "/query", b"").unwrap();
    assert_eq!(status, 405);

    // graceful drain: /shutdown acknowledges, then the server joins
    // with a faithful report.
    let (status, body) = client_request(addr, "POST", "/shutdown", b"").unwrap();
    assert_eq!(status, 200);
    assert_eq!(json(&body).get("draining").unwrap().as_bool(), Some(true));
    let report = server.wait();
    assert_eq!(report.writes, 2);
    assert!(report.specs >= 4);
    assert!(report.batches >= 1);
    assert!(report.http_requests >= 14);
    assert_eq!(report.rejected, 0);
}

#[test]
fn unbatched_mode_still_answers() {
    // batch_max == 1 degenerates to unbatched execution; answers are
    // identical (the oracle test pins bit-identity, this pins
    // liveness of the degenerate path).
    let server = Server::start(
        fitted_miner(),
        &ServeConfig {
            workers: 1,
            batch_window: Duration::from_millis(0),
            batch_max: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let (status, body) =
        client_request(server.addr(), "POST", "/query", br#"{"ids":[0,1,2]}"#).unwrap();
    assert_eq!(status, 200);
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(v.get("results").unwrap().as_array().unwrap().len(), 3);
    let report = server.join();
    assert_eq!(report.specs, 3);
    server_report_sane(&report);
}

fn server_report_sane(report: &hos_serve::ServeReport) {
    assert_eq!(report.rejected, 0);
    assert!(report.batches >= 1);
}

/// Satellite smoke for the approximate tier: the hos-serve BINARY
/// with `--engine hnsw --ef N` must reach the HNSW engine (previously
/// the flags were simply not parsed) and answer every endpoint. The
/// binary prints its bound address, so an ephemeral port works.
#[test]
fn hnsw_flags_reach_the_binary_and_endpoints_answer() {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_hos-serve"))
        .args([
            "--n",
            "300",
            "--d",
            "4",
            "--k",
            "4",
            "--seed",
            "7",
            "--engine",
            "hnsw",
            "--ef",
            "48",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hos-serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let listening = loop {
        match lines.next() {
            Some(Ok(line)) if line.contains("listening on") => break line,
            Some(Ok(_)) => continue,
            other => {
                let _ = child.kill();
                panic!("no listening line, got {other:?}");
            }
        }
    };
    // "hos-serve listening on 127.0.0.1:PORT (..."
    let addr: std::net::SocketAddr = listening
        .split_whitespace()
        .nth(3)
        .expect("address token")
        .parse()
        .expect("parse bound address");

    let walk: &[(&str, &str, &[u8])] = &[
        ("GET", "/healthz", b""),
        ("GET", "/stats", b""),
        ("POST", "/query", br#"{"ids":[0,1,2]}"#),
        ("POST", "/scan", br#"{"top":2}"#),
        ("POST", "/insert", br#"{"row":[1.0,2.0,3.0,4.0]}"#),
        ("POST", "/explain", br#"{"id":0}"#),
        ("POST", "/retire", br#"{"id":301}"#),
    ];
    for (method, path, body) in walk {
        let (status, resp) = client_request(addr, method, path, body).unwrap();
        assert_eq!(
            status,
            200,
            "{method} {path}: {}",
            String::from_utf8_lossy(&resp)
        );
    }
    // The served engine must actually be approximate: queries went
    // through and the row count reflects the write walk above.
    let (_, body) = client_request(addr, "GET", "/stats", b"").unwrap();
    let stats = json(&body);
    assert_eq!(stats.get("live").unwrap().as_usize(), Some(301));
    assert_eq!(stats.get("writes").unwrap().as_usize(), Some(2));

    let (status, _) = client_request(addr, "POST", "/shutdown", b"").unwrap();
    assert_eq!(status, 200);
    // stdout is already ours through the reader: drain the remaining
    // lines for the summary, then reap the process.
    let rest: Vec<String> = lines.map_while(Result::ok).collect();
    let status = child.wait().expect("binary exits");
    assert!(status.success(), "serve exited non-zero");
    assert!(
        rest.iter().any(|l| l.contains("hos-serve drained:")),
        "missing drain summary in {rest:?}"
    );
}
