//! hosbin wire robustness on a live server: arbitrary byte soup after
//! a valid preamble must never panic or wedge the server, every
//! malformed frame gets the typed error the protocol promises (with
//! the documented keep-or-close behaviour), and pipelined replies
//! come back strictly in request order.
//!
//! The HTTP-side twin of this suite is `protocol.rs`; both hammer one
//! listener, which is itself part of the contract — protocol
//! negotiation must isolate the two wire formats completely.

use hos_core::{HosMiner, HosMinerConfig, QuerySpec, ThresholdPolicy};
use hos_data::Dataset;
use hos_serve::{codec, ApiRequest, ServeConfig, Server};
use proptest::prelude::*;
use std::io::{Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;
use tinyhttp::bin::{self, BinClient, MAGIC};

/// Generous client-side frame cap for reading server replies.
const MAX_FRAME: usize = 8 * 1024 * 1024;

/// One shared live server for every case (leaked for the test process
/// lifetime — each case re-verifies it is healthy). The workload here
/// is read-only, so replies are deterministic across the whole file.
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64, (i % 3) as f64])
            .collect();
        let miner = HosMiner::fit(
            Dataset::from_rows(&rows).unwrap(),
            HosMinerConfig {
                k: 3,
                threshold: ThresholdPolicy::Fixed(5.0),
                sample_size: 0,
                ..HosMinerConfig::default()
            },
        )
        .unwrap();
        let server = Server::start(
            miner,
            &ServeConfig {
                workers: 2,
                batch_window: Duration::from_millis(1),
                batch_max: 8,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        std::mem::forget(server); // keep serving until process exit
        addr
    })
}

/// Health probe over BOTH protocols on the listener — hostile binary
/// traffic must not degrade the HTTP side either.
fn healthz_ok(addr: SocketAddr) -> bool {
    let mut body = Vec::new();
    let opcode = codec::encode_bin_request(&ApiRequest::Healthz, &mut body);
    let bin_ok = match BinClient::connect(addr) {
        Ok(mut cli) => {
            matches!(cli.call(opcode, &body), Ok((op, _)) if op == opcode | codec::op::REPLY)
        }
        Err(_) => false,
    };
    bin_ok
        && matches!(
            tinyhttp::client_request(addr, "GET", "/healthz", b""),
            Ok((200, _))
        )
}

/// A raw hosbin connection: preamble written, frames by hand.
fn bin_stream(addr: SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(&MAGIC).unwrap();
    s
}

/// Reads one frame and asserts it is the typed error envelope,
/// returning `(status, kind)`.
fn read_error(stream: &mut TcpStream) -> (u16, String) {
    let mut body = Vec::new();
    let op = bin::read_frame(stream, &mut body, MAX_FRAME)
        .unwrap()
        .expect("an error frame before close");
    assert_eq!(op, codec::op::ERROR, "expected the error opcode");
    let (status, json) = codec::bin_reply_to_json(op, &body).unwrap();
    let kind = json
        .get("error")
        .unwrap()
        .get("kind")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(
        !json
            .get("error")
            .unwrap()
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .is_empty(),
        "error frames carry a human-readable message"
    );
    (status, kind)
}

proptest! {
    // Socket-level cases are slow; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary bytes after a valid preamble: every byte the server
    /// sends back parses as whole frames (typed errors, or a lucky
    /// valid reply when the soup forms a real request), the stream
    /// never ends mid-frame, and the server stays healthy on both
    /// protocols.
    #[test]
    fn byte_soup_after_the_preamble_never_wedges(
        bytes in prop::collection::vec(0u8..=255, 0..200),
    ) {
        let addr = server_addr();
        let mut stream = bin_stream(addr);
        let _ = stream.write_all(&bytes);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut raw = Vec::new();
        let _ = stream.read_to_end(&mut raw);
        let mut cursor = Cursor::new(raw);
        let mut body = Vec::new();
        loop {
            match bin::read_frame(&mut cursor, &mut body, MAX_FRAME) {
                Ok(None) => break, // replies ended at a frame boundary
                Ok(Some(op)) => prop_assert!(
                    op == codec::op::ERROR || op & codec::op::REPLY != 0,
                    "server sent a non-reply frame {op:#04x}"
                ),
                Err(e) => prop_assert!(false, "server reply ended mid-frame: {e}"),
            }
        }
        prop_assert!(healthz_ok(addr), "server wedged after {} bytes", bytes.len());
    }
}

/// Unknown opcodes and malformed bodies are recoverable: the typed
/// error frame comes back and the SAME connection keeps serving.
#[test]
fn recoverable_frame_errors_keep_the_connection() {
    let addr = server_addr();
    let mut stream = bin_stream(addr);
    let mut scratch = Vec::new();

    bin::write_frame(&mut stream, &mut scratch, 0x40, b"").unwrap();
    let (status, kind) = read_error(&mut stream);
    assert_eq!((status, kind.as_str()), (404, "unknown_opcode"));

    bin::write_frame(&mut stream, &mut scratch, codec::op::QUERY, &[9, 9, 9]).unwrap();
    let (status, kind) = read_error(&mut stream);
    assert_eq!((status, kind.as_str()), (400, "bad_body"));

    // A spec-level violation (query with zero specs) is bad_body too.
    bin::write_frame(
        &mut stream,
        &mut scratch,
        codec::op::QUERY,
        &0u32.to_le_bytes(),
    )
    .unwrap();
    let (status, kind) = read_error(&mut stream);
    assert_eq!((status, kind.as_str()), (400, "bad_body"));

    // After all that abuse, the same connection still answers.
    let mut body = Vec::new();
    let opcode = codec::encode_bin_request(&ApiRequest::Healthz, &mut body);
    bin::write_frame(&mut stream, &mut scratch, opcode, &body).unwrap();
    let mut reply = Vec::new();
    let rop = bin::read_frame(&mut stream, &mut reply, MAX_FRAME)
        .unwrap()
        .expect("a healthz reply");
    assert_eq!(rop, opcode | codec::op::REPLY);
    assert!(healthz_ok(addr));
}

/// Framing-level faults (empty frame, oversized declaration, cut-off
/// body) answer a typed error and then close — the stream position is
/// unrecoverable. A bad preamble never negotiates at all.
#[test]
fn fatal_frame_errors_answer_typed_then_close() {
    let addr = server_addr();

    // Empty frame: len = 0 declares no opcode.
    let mut stream = bin_stream(addr);
    stream.write_all(&0u32.to_le_bytes()).unwrap();
    let (status, kind) = read_error(&mut stream);
    assert_eq!((status, kind.as_str()), (400, "empty_frame"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "connection must close after a fatal framing error"
    );

    // Oversized declared length: rejected before any body is read.
    let mut stream = bin_stream(addr);
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let (status, kind) = read_error(&mut stream);
    assert_eq!((status, kind.as_str()), (413, "frame_too_large"));

    // Truncated: a 10-byte frame cut off after 3 bytes.
    let mut stream = bin_stream(addr);
    stream.write_all(&10u32.to_le_bytes()).unwrap();
    stream.write_all(&[codec::op::QUERY, 1, 2]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let (status, kind) = read_error(&mut stream);
    assert_eq!((status, kind.as_str()), (400, "truncated"));

    // A bad preamble: silent close, nothing written back.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&[0x00, b'X', b'Y', b'Z']).unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    assert!(out.is_empty(), "bad magic must close silently, got {out:?}");

    assert!(healthz_ok(addr));
}

/// Pipelined frames come back strictly in request order: the reply
/// stream is byte-identical to a sequential run of the same requests
/// on a second connection.
#[test]
fn pipelined_replies_arrive_in_request_order() {
    let addr = server_addr();
    let mut reqs = Vec::new();
    let mut body = Vec::new();
    for i in 0..8usize {
        let id = (i * 7) % 50;
        let op =
            codec::encode_bin_request(&ApiRequest::Query(vec![QuerySpec::Member(id)]), &mut body);
        reqs.push((op, body.clone()));
    }
    // Sequential reference run.
    let mut seq = BinClient::connect(addr).unwrap();
    let reference: Vec<(u8, Vec<u8>)> = reqs
        .iter()
        .map(|(op, b)| seq.call(*op, b).unwrap())
        .collect();
    // Pipelined: every send first, then every receive.
    let mut pipe = BinClient::connect(addr).unwrap();
    for (op, b) in &reqs {
        pipe.send(*op, b).unwrap();
    }
    for (i, want) in reference.iter().enumerate() {
        let (op, got) = pipe.recv().unwrap();
        assert_eq!(op, want.0, "slot {i}: opcode");
        assert_eq!(
            got,
            want.1.as_slice(),
            "slot {i}: pipelined reply must be byte-identical and in order"
        );
    }
}
