//! The serve concurrency oracle: concurrent mixed query/insert/retire
//! traffic against the batching server must be **bit-identical** to a
//! serial replay.
//!
//! How the proof works:
//!
//! * Every successful write returns the version it produced; versions
//!   are assigned under the write lock, so they totally order the
//!   writes (1, 2, 3, … with no gaps).
//! * Every query response carries the version it observed, read under
//!   the read lock — so the answer was computed against the state
//!   with *exactly that many* writes applied.
//! * The replay fits a second, identically-configured miner (fitting
//!   is deterministic), applies the recorded writes in version order,
//!   and at each version evaluates the queries that observed it —
//!   serially, one `query_each` per request.
//! * Comparison is on **bits**: the server formats `f64`s with Rust's
//!   shortest round-trip representation, the oracle parses them back
//!   and compares `to_bits()`. No epsilon anywhere.
//!
//! This pins at once: batching does not change answers, concurrent
//! readers/writers serialize cleanly, per-item errors are stable, and
//! insert id assignment is the serial one.
//!
//! The second oracle in this file is **cross-protocol**: the same
//! sequential op list driven over HTTP/JSON and over hosbin (framed
//! binary) against identically-fitted twin servers must produce
//! field-for-field identical replies, `f64`s compared on bits.

use hos_core::{HosError, HosMiner, HosMinerConfig, QueryOutcome, QuerySpec, ThresholdPolicy};
use hos_data::synth::planted::{generate, PlantedSpec};
use hos_data::Subspace;
use hos_serve::{Json, ServeConfig, Server};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;
use tinyhttp::client_request;

fn fitted_miner() -> HosMiner {
    let spec = PlantedSpec {
        n_background: 150,
        d: 4,
        n_clusters: 2,
        cluster_sigma: 1.0,
        extent: 50.0,
        targets: vec![Subspace::from_dims(&[1, 2])],
        shift_sigmas: 10.0,
        seed: 7,
    };
    let w = generate(&spec).unwrap();
    HosMiner::fit(
        w.dataset,
        HosMinerConfig {
            k: 4,
            threshold: ThresholdPolicy::FullSpaceQuantile { q: 0.9, sample: 80 },
            sample_size: 8,
            ..HosMinerConfig::default()
        },
    )
    .unwrap()
}

/// Deterministic row for write `i` of writer `w` — near the data so
/// inserts genuinely shift neighbourhoods (version-sensitive answers).
fn row_for(w: usize, i: usize) -> Vec<f64> {
    let base = (w * 31 + i * 7) as f64;
    vec![
        (base % 11.0) - 5.0,
        (base % 13.0) - 6.0,
        (base % 17.0) - 8.0,
        (base % 19.0) - 9.0,
    ]
}

#[derive(Debug)]
enum WriteRecord {
    Insert { row: Vec<f64>, id: usize },
    Retire { id: usize },
}

struct QueryRecord {
    specs: Vec<QuerySpec>,
    version: u64,
    /// Parsed `results` array, verbatim from the wire.
    results: Vec<Json>,
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, Json) {
    let (status, raw) = client_request(addr, "POST", path, body.as_bytes()).unwrap();
    let v = Json::parse(std::str::from_utf8(&raw).unwrap())
        .unwrap_or_else(|e| panic!("bad json from {path}: {e}"));
    (status, v)
}

/// Asserts the wire representation of one result slot matches the
/// serially-computed outcome, bit for bit.
fn assert_slot_matches(wire: &Json, serial: &Result<QueryOutcome, HosError>, ctx: &str) {
    match serial {
        Err(e) => {
            let err = wire.get("error").unwrap_or_else(|| {
                panic!("{ctx}: serial replay errored ({e}) but the wire has an outcome")
            });
            assert_eq!(err.get("kind").unwrap().as_str(), Some(e.kind()), "{ctx}");
            assert_eq!(
                err.get("message").unwrap().as_str(),
                Some(e.to_string().as_str()),
                "{ctx}"
            );
        }
        Ok(outcome) => {
            assert!(
                wire.get("error").is_none(),
                "{ctx}: serial replay succeeded but the wire has an error"
            );
            // minimal: exact subspace lists.
            let minimal = wire.get("minimal").unwrap().as_array().unwrap();
            assert_eq!(minimal.len(), outcome.minimal.len(), "{ctx}: minimal len");
            for (got, want) in minimal.iter().zip(&outcome.minimal) {
                let dims: Vec<usize> = got
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|d| d.as_usize().unwrap())
                    .collect();
                assert_eq!(dims, want.dim_vec(), "{ctx}: minimal subspace");
            }
            // outlying: subspaces + ODs compared on bits.
            let outlying = wire.get("outlying").unwrap().as_array().unwrap();
            assert_eq!(
                outlying.len(),
                outcome.outlying.len(),
                "{ctx}: outlying len"
            );
            for (got, want) in outlying.iter().zip(&outcome.outlying) {
                let dims: Vec<usize> = got
                    .get("subspace")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|d| d.as_usize().unwrap())
                    .collect();
                assert_eq!(dims, want.subspace.dim_vec(), "{ctx}: outlying subspace");
                match (got.get("od").unwrap().as_f64(), want.od) {
                    (Some(g), Some(w)) => {
                        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: od bits");
                    }
                    (None, None) => {}
                    (g, w) => panic!("{ctx}: od presence differs ({g:?} vs {w:?})"),
                }
            }
            let evals = wire
                .get("stats")
                .unwrap()
                .get("od_evals")
                .unwrap()
                .as_usize()
                .unwrap() as u64;
            assert_eq!(evals, outcome.stats.od_evals, "{ctx}: od_evals");
        }
    }
}

#[test]
fn concurrent_mixed_traffic_equals_serial_replay() {
    let server = Server::start(
        fitted_miner(),
        &ServeConfig {
            workers: 4,
            batch_window: Duration::from_millis(2),
            batch_max: 16,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let writes: Mutex<BTreeMap<u64, WriteRecord>> = Mutex::new(BTreeMap::new());
    let queries: Mutex<Vec<QueryRecord>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        // Two writers: inserts then retires of their own inserts,
        // interleaving freely with each other and with the queries.
        for w in 0..2usize {
            let writes = &writes;
            scope.spawn(move || {
                let mut my_ids = Vec::new();
                for i in 0..6 {
                    let row = row_for(w, i);
                    let body = format!(
                        "{{\"row\":[{}]}}",
                        row.iter()
                            .map(|v| format!("{v}"))
                            .collect::<Vec<_>>()
                            .join(",")
                    );
                    let (status, v) = post(addr, "/insert", &body);
                    assert_eq!(status, 200);
                    let version = v.get("version").unwrap().as_usize().unwrap() as u64;
                    let id = v.get("id").unwrap().as_usize().unwrap();
                    my_ids.push(id);
                    writes
                        .lock()
                        .unwrap()
                        .insert(version, WriteRecord::Insert { row, id });
                }
                for &id in my_ids.iter().take(3) {
                    let (status, v) = post(addr, "/retire", &format!("{{\"id\":{id}}}"));
                    assert_eq!(status, 200);
                    let version = v.get("version").unwrap().as_usize().unwrap() as u64;
                    writes
                        .lock()
                        .unwrap()
                        .insert(version, WriteRecord::Retire { id });
                }
            });
        }
        // Three query clients: member ids (some of which get retired
        // mid-run by the writers — a race the versioning resolves) and
        // near-data points whose neighbourhoods shift with every write.
        for c in 0..3usize {
            let queries = &queries;
            scope.spawn(move || {
                for i in 0..8 {
                    let id = (c * 17 + i * 5) % 150;
                    let p = row_for(c + 7, i);
                    let body = format!(
                        "{{\"ids\":[{id},{}],\"point\":[{}]}}",
                        (id + 31) % 150,
                        p.iter()
                            .map(|v| format!("{v}"))
                            .collect::<Vec<_>>()
                            .join(",")
                    );
                    let (status, v) = post(addr, "/query", &body);
                    assert_eq!(status, 200);
                    let version = v.get("version").unwrap().as_usize().unwrap() as u64;
                    let results = v.get("results").unwrap().as_array().unwrap().to_vec();
                    queries.lock().unwrap().push(QueryRecord {
                        specs: vec![
                            QuerySpec::Member(id),
                            QuerySpec::Member((id + 31) % 150),
                            QuerySpec::Point(p),
                        ],
                        version,
                        results,
                    });
                }
            });
        }
    });

    let report = server.join();
    let writes = writes.into_inner().unwrap();
    let mut queries = queries.into_inner().unwrap();
    assert_eq!(writes.len(), 18, "12 inserts + 6 retires");
    assert_eq!(report.writes, 18);
    assert_eq!(queries.len(), 24);

    // Versions must be exactly 1..=18 — the single-writer discipline
    // leaves no gaps and no duplicates.
    let versions: Vec<u64> = writes.keys().copied().collect();
    assert_eq!(versions, (1..=18).collect::<Vec<u64>>());

    // Serial replay on a second identical miner.
    let mut replay = fitted_miner();
    queries.sort_by_key(|q| q.version);
    let mut next = queries.iter().peekable();
    for applied in 0..=18u64 {
        // Evaluate every query that observed exactly `applied` writes.
        while next.peek().is_some_and(|q| q.version == applied) {
            let q = next.next().unwrap();
            let serial = replay.query_each(&q.specs);
            assert_eq!(q.results.len(), serial.len());
            for (slot, (wire, serial)) in q.results.iter().zip(&serial).enumerate() {
                assert_slot_matches(wire, serial, &format!("version {applied}, slot {slot}"));
            }
        }
        // Apply the next write.
        if let Some(rec) = writes.get(&(applied + 1)) {
            match rec {
                WriteRecord::Insert { row, id } => {
                    let got = replay.insert_point(row).unwrap();
                    assert_eq!(got, *id, "insert id at version {}", applied + 1);
                }
                WriteRecord::Retire { id } => replay.retire_point(*id).unwrap(),
            }
        }
    }
    assert!(next.peek().is_none(), "every query was replayed");

    // The workload genuinely exercised batching, not just serial luck.
    assert!(report.batches >= 1);
    assert_eq!(report.specs, 24 * 3);
}

/// Structural bit-equality of two JSON trees. Objects must agree on
/// key order too (both protocols promise a fixed field order), except
/// that per-protocol request counters are each server's own tally and
/// are skipped by value (their keys must still be present).
fn assert_bits_equal(a: &Json, b: &Json, path: &str) {
    const PROTOCOL_LOCAL: [&str; 2] = ["http_requests", "bin_requests"];
    match (a, b) {
        (Json::Null, Json::Null) => {}
        (Json::Bool(x), Json::Bool(y)) => assert_eq!(x, y, "{path}"),
        (Json::Num(x), Json::Num(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "{path}: {x} vs {y}");
        }
        (Json::Str(x), Json::Str(y)) => assert_eq!(x, y, "{path}"),
        (Json::Arr(x), Json::Arr(y)) => {
            assert_eq!(x.len(), y.len(), "{path}: array length");
            for (i, (xa, ya)) in x.iter().zip(y).enumerate() {
                assert_bits_equal(xa, ya, &format!("{path}[{i}]"));
            }
        }
        (Json::Obj(x), Json::Obj(y)) => {
            assert_eq!(
                x.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
                y.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
                "{path}: object keys"
            );
            for ((k, xa), (_, ya)) in x.iter().zip(y) {
                if PROTOCOL_LOCAL.contains(&k.as_str()) {
                    continue;
                }
                assert_bits_equal(xa, ya, &format!("{path}.{k}"));
            }
        }
        _ => panic!("{path}: shape differs ({a:?} vs {b:?})"),
    }
}

#[test]
fn every_endpoint_is_bit_identical_across_protocols() {
    use hos_serve::{codec, ApiRequest};
    use tinyhttp::bin::BinClient;

    let config = ServeConfig {
        workers: 2,
        batch_window: Duration::from_millis(2),
        batch_max: 16,
        ..ServeConfig::default()
    };
    let http_server = Server::start(fitted_miner(), &config).unwrap();
    let bin_server = Server::start(fitted_miner(), &config).unwrap();
    let haddr = http_server.addr();
    let mut bcli = BinClient::connect(bin_server.addr()).unwrap();
    let mut frame = Vec::new();
    let mut ops = 0u64;

    // One op over both wires; replies must agree on status and bits.
    let mut step = |method: &str, path: &str, json_body: &str, req: &ApiRequest| -> Json {
        let (hstatus, raw) = client_request(haddr, method, path, json_body.as_bytes()).unwrap();
        let hjson = Json::parse(std::str::from_utf8(&raw).unwrap()).unwrap();
        let op = codec::encode_bin_request(req, &mut frame);
        let (rop, resp) = bcli.call(op, &frame).unwrap();
        let (bstatus, bjson) = codec::bin_reply_to_json(rop, &resp).unwrap();
        assert_eq!(hstatus, bstatus, "{path}: status");
        assert_bits_equal(&hjson, &bjson, path);
        ops += 1;
        hjson
    };

    step("GET", "/healthz", "", &ApiRequest::Healthz);
    step("GET", "/stats", "", &ApiRequest::Stats);
    let near = row_for(9, 3);
    let near_s = near
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",");
    step(
        "POST",
        "/query",
        &format!("{{\"ids\":[3,9],\"point\":[{near_s}]}}"),
        &ApiRequest::Query(vec![
            QuerySpec::Member(3),
            QuerySpec::Member(9),
            QuerySpec::Point(near.clone()),
        ]),
    );
    step("POST", "/scan", "{\"top\":3}", &ApiRequest::Scan { top: 3 });
    // The JSON default for a bodyless scan must equal an explicit
    // top=5 over the binary wire.
    step("POST", "/scan", "{}", &ApiRequest::Scan { top: 5 });
    let row = row_for(4, 2);
    let row_s = row
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",");
    let inserted = step(
        "POST",
        "/insert",
        &format!("{{\"row\":[{row_s}]}}"),
        &ApiRequest::Insert(row.clone()),
    );
    let id = inserted.get("id").unwrap().as_usize().unwrap();
    step(
        "POST",
        "/query",
        &format!("{{\"id\":{id}}}"),
        &ApiRequest::Query(vec![QuerySpec::Member(id)]),
    );
    step(
        "POST",
        "/explain",
        &format!("{{\"id\":{id}}}"),
        &ApiRequest::ExplainId(id),
    );
    step(
        "POST",
        "/explain",
        &format!("{{\"point\":[{near_s}]}}"),
        &ApiRequest::ExplainPoint(near.clone()),
    );
    step(
        "POST",
        "/retire",
        &format!("{{\"id\":{id}}}"),
        &ApiRequest::Retire(id),
    );
    // Typed errors must cross protocols identically too: retiring
    // twice is a 422 data error; querying the retired member is a
    // per-item error inside a 200 batch.
    step(
        "POST",
        "/retire",
        &format!("{{\"id\":{id}}}"),
        &ApiRequest::Retire(id),
    );
    step(
        "POST",
        "/query",
        &format!("{{\"ids\":[{id},3]}}"),
        &ApiRequest::Query(vec![QuerySpec::Member(id), QuerySpec::Member(3)]),
    );
    step("GET", "/stats", "", &ApiRequest::Stats);
    step("POST", "/shutdown", "{}", &ApiRequest::Shutdown);

    let total = ops;
    let hreport = http_server.join();
    let breport = bin_server.join();
    assert_eq!(hreport.http_requests, total);
    assert_eq!(hreport.bin_requests, 0);
    assert_eq!(breport.bin_requests, total);
    assert_eq!(breport.http_requests, 0);
    // Identical workloads → identical execution tallies.
    assert_eq!(hreport.specs, breport.specs);
    assert_eq!(hreport.writes, breport.writes);
    assert_eq!(hreport.rejected, breport.rejected);
}
