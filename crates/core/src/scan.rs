//! Dataset-wide outlying-subspace scans.
//!
//! The demo's interactive flow is "pick a suspicious point, ask where
//! it is outlying". This module automates the first half: by OD
//! monotonicity the full-space OD is every point's *maximum* OD over
//! all subspaces, so ranking by it immediately separates points that
//! have at least one outlying subspace (full-space OD ≥ T) from points
//! that have none — the latter need no search at all.

use crate::miner::{HosMiner, QueryOutcome};
use crate::Result;
use hos_data::PointId;

/// One scan hit: a point with at least one outlying subspace.
#[derive(Clone, Debug)]
pub struct ScanHit {
    /// The point.
    pub id: PointId,
    /// Its full-space OD (the maximum over all subspaces).
    pub full_od: f64,
    /// The full per-point query result.
    pub outcome: QueryOutcome,
}

/// Summary of a dataset scan.
#[derive(Clone, Debug)]
pub struct ScanReport {
    /// Points with a non-empty answer set, descending by full-space OD.
    pub hits: Vec<ScanHit>,
    /// Points above the threshold that were not searched because the
    /// hit `limit` was reached (each *would* be a hit).
    pub truncated: usize,
    /// How many points were skipped without any subspace search
    /// because their full-space OD fell below the threshold.
    pub skipped: usize,
    /// The threshold used.
    pub threshold: f64,
    /// Exact pair folds the ranking kernel performed — the blocked
    /// counterpart of engine `distance_evals`, reported here because
    /// the kernel reads the dataset directly and engine counters never
    /// observe the ranking pass.
    pub ranking_evals: u64,
    /// Live pairs the ranking kernel rejected via quantized admission
    /// bounds without an exact fold. Together the two counters cover
    /// every live ordered pair:
    /// `ranking_evals + ranking_filtered == live * (live - 1)`.
    pub ranking_filtered: u64,
}

impl ScanReport {
    /// Ids of all hits, descending by full-space OD.
    pub fn hit_ids(&self) -> Vec<PointId> {
        self.hits.iter().map(|h| h.id).collect()
    }
}

/// Scans every **live** dataset point (tombstoned rows neither rank
/// nor search — after streaming removals they must never surface in
/// [`ScanReport::hit_ids`]), running the subspace search only for
/// points whose full-space OD reaches the threshold, and reporting at
/// most `limit` hits (use `usize::MAX` for all).
///
/// The ranking phase runs the **blocked all-points kernel**
/// ([`hos_index::all_points_full_od`]): one SoA transpose, then
/// block-of-queries × column streaming with reused top-k heaps,
/// instead of `n` independent engine queries. The kernel folds
/// per-dimension terms in the same ascending order and selects/sums in
/// the same `(distance, id)` order as every engine, so the ranked ODs
/// are bit-identical to the per-point path on any engine (all engines
/// are pinned bit-identical to `LinearScan`); only the cost changes.
/// Engine `distance_evals` counters never observe the ranking pass —
/// its work (exact folds plus quantized-admission rejects) is reported
/// in [`ScanReport::ranking_evals`] / [`ScanReport::ranking_filtered`].
///
/// Every ranked OD self-excludes, so the window must hold more than
/// `k` live points: the kernel returns the same typed
/// `InsufficientPoints` error the per-point query paths do, instead of
/// silently understating every OD.
pub fn scan_outliers(miner: &HosMiner, limit: usize) -> Result<ScanReport> {
    let engine = miner.engine();
    let ds = engine.dataset();
    let k = miner.config().k;
    let t = miner.threshold();

    let scan = hos_index::all_points_full_od_counted(ds, engine.metric(), k)?;
    let mut ranked: Vec<(PointId, f64)> = scan.ods;
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));

    let total = ranked.len();
    let mut hits = Vec::new();
    let mut truncated = 0usize;
    let mut skipped = 0usize;
    for (idx, (id, full_od)) in ranked.iter().enumerate() {
        if *full_od < t {
            // Monotonicity: no subspace can reach T either, and the
            // ranking is descending, so everything from here on is
            // also below T.
            skipped = total - idx;
            break;
        }
        if hits.len() >= limit {
            truncated += 1;
            continue;
        }
        let outcome = miner.query_id(*id)?;
        debug_assert!(
            outcome.is_outlier(),
            "full OD >= T implies non-empty answer"
        );
        hits.push(ScanHit {
            id: *id,
            full_od: *full_od,
            outcome,
        });
    }
    Ok(ScanReport {
        hits,
        truncated,
        skipped,
        threshold: t,
        ranking_evals: scan.distance_evals,
        ranking_filtered: scan.filtered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::HosMinerConfig;
    use crate::od::ThresholdPolicy;
    use hos_data::synth::planted::{generate, PlantedSpec};
    use hos_data::Subspace;

    fn miner() -> (HosMiner, Vec<PointId>) {
        let w = generate(&PlantedSpec {
            n_background: 400,
            d: 6,
            n_clusters: 2,
            cluster_sigma: 1.0,
            extent: 60.0,
            targets: vec![Subspace::from_dims(&[0]), Subspace::from_dims(&[2, 3])],
            shift_sigmas: 12.0,
            seed: 5,
        })
        .unwrap();
        let ids = w.outlier_ids();
        let m = HosMiner::fit(
            w.dataset,
            HosMinerConfig {
                k: 5,
                threshold: ThresholdPolicy::FullSpaceQuantile {
                    q: 0.98,
                    sample: 200,
                },
                sample_size: 5,
                ..HosMinerConfig::default()
            },
        )
        .unwrap();
        (m, ids)
    }

    #[test]
    fn scan_finds_planted_points_first() {
        let (m, planted) = miner();
        let report = scan_outliers(&m, 10).unwrap();
        assert!(!report.hits.is_empty());
        // The two planted outliers dominate the full-space OD ranking.
        let top2: Vec<PointId> = report.hit_ids().into_iter().take(2).collect();
        for id in planted {
            assert!(top2.contains(&id), "planted {id} not in top hits {top2:?}");
        }
        // Descending order by full OD.
        for w in report.hits.windows(2) {
            assert!(w[0].full_od >= w[1].full_od);
        }
        // Every hit crosses the threshold and has a non-empty answer.
        for h in &report.hits {
            assert!(h.full_od >= report.threshold);
            assert!(h.outcome.is_outlier());
        }
    }

    #[test]
    fn blocked_ranking_bit_identical_to_per_point_engine_ods() {
        // The ranking phase now runs the blocked all-points kernel;
        // every reported full_od must still equal a per-point engine
        // query bit for bit — across engines and shard counts, since
        // the scan serves whichever engine the miner was fitted with.
        use hos_index::Engine;
        let (m, _) = miner();
        let ds = m.engine().dataset().clone();
        let report = scan_outliers(&m, usize::MAX).unwrap();
        let full = ds.full_space();
        for engine_kind in [Engine::Linear, Engine::XTree, Engine::VaFile] {
            let cfg = HosMinerConfig {
                k: 5,
                threshold: ThresholdPolicy::Fixed(m.threshold()),
                sample_size: 0,
                engine: engine_kind,
                ..HosMinerConfig::default()
            };
            let other = HosMiner::fit(ds.clone(), cfg).unwrap();
            for h in &report.hits {
                assert_eq!(
                    h.full_od,
                    other.engine().od(ds.row(h.id), 5, full, Some(h.id)),
                    "{engine_kind} point {}",
                    h.id
                );
            }
        }
    }

    #[test]
    fn skip_accounting() {
        let (m, _) = miner();
        let report = scan_outliers(&m, usize::MAX).unwrap();
        let ds_len = m.engine().dataset().len();
        assert_eq!(
            report.hits.len() + report.truncated + report.skipped,
            ds_len
        );
        assert_eq!(report.truncated, 0);
        // With a 0.98-quantile threshold, the vast majority is skipped
        // without a search.
        assert!(report.skipped > ds_len * 9 / 10);
    }

    #[test]
    fn tombstoned_rows_never_appear_in_hits() {
        let (mut m, planted) = miner();
        let before = scan_outliers(&m, usize::MAX).unwrap();
        for id in &planted {
            assert!(before.hit_ids().contains(id), "planted {id} missing");
        }
        // Retire the planted outliers: they must vanish from ranking,
        // hits and accounting — a tombstone must never resurface.
        for &id in &planted {
            m.retire_point(id).unwrap();
        }
        let after = scan_outliers(&m, usize::MAX).unwrap();
        let ds = m.engine().dataset();
        for &id in &planted {
            assert!(!after.hit_ids().contains(&id), "tombstone {id} in hits");
        }
        for h in &after.hits {
            assert!(ds.is_live(h.id));
        }
        assert_eq!(
            after.hits.len() + after.truncated + after.skipped,
            ds.live_len(),
            "accounting must cover exactly the live points"
        );
        // Limit semantics after mutation: the cap limits searches, not
        // ranking, and the skip count is unchanged by the cap.
        let capped = scan_outliers(&m, 1).unwrap();
        assert_eq!(capped.hits.len(), 1.min(after.hits.len()));
        assert_eq!(capped.skipped, after.skipped);
        assert!(capped.hit_ids().iter().all(|&id| ds.is_live(id)));
        // A freshly inserted extreme point becomes the top hit.
        let far = m.insert_point(&[500.0; 6]).unwrap();
        let re = scan_outliers(&m, 3).unwrap();
        assert_eq!(re.hit_ids().first(), Some(&far));
    }

    #[test]
    fn scan_errors_once_window_shrinks_below_k() {
        use crate::error::HosError;
        use hos_index::IndexError;
        let rows: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64, (i % 2) as f64]).collect();
        let mut m = HosMiner::fit(
            hos_data::Dataset::from_rows(&rows).unwrap(),
            HosMinerConfig {
                k: 4,
                threshold: ThresholdPolicy::Fixed(5.0),
                sample_size: 0,
                ..HosMinerConfig::default()
            },
        )
        .unwrap();
        assert!(scan_outliers(&m, 3).is_ok());
        for id in 0..5 {
            m.retire_point(id).unwrap();
        }
        // 4 live, each scan OD self-excludes → only 3 candidates for
        // k = 4: typed error, not silently understated ODs.
        assert!(matches!(
            scan_outliers(&m, 3),
            Err(HosError::Index(IndexError::InsufficientPoints {
                available: 3,
                k: 4
            }))
        ));
    }

    /// Satellite pin: the ranking pass's work accounting is complete —
    /// exact folds plus quantized rejects cover every ordered live
    /// pair, before and after churn, and the counters actually move
    /// (the kernel no longer does its work invisibly).
    #[test]
    fn ranking_eval_accounting_covers_every_live_pair() {
        let (mut m, planted) = miner();
        let report = scan_outliers(&m, usize::MAX).unwrap();
        let live = m.engine().dataset().live_len() as u64;
        assert_eq!(
            report.ranking_evals + report.ranking_filtered,
            live * (live - 1)
        );
        assert!(
            report.ranking_evals >= live * 5,
            "at least k folds per query"
        );
        for &id in &planted {
            m.retire_point(id).unwrap();
        }
        let after = scan_outliers(&m, usize::MAX).unwrap();
        let live = m.engine().dataset().live_len() as u64;
        assert_eq!(
            after.ranking_evals + after.ranking_filtered,
            live * (live - 1),
            "accounting must track the live set through churn"
        );
    }

    #[test]
    fn limit_caps_searches_not_ranking() {
        let (m, _) = miner();
        let all = scan_outliers(&m, usize::MAX).unwrap();
        let one = scan_outliers(&m, 1).unwrap();
        assert_eq!(one.hits.len(), 1.min(all.hits.len()));
        if !all.hits.is_empty() {
            assert_eq!(one.hits[0].id, all.hits[0].id);
            assert_eq!(one.truncated, all.hits.len() - 1);
            assert_eq!(one.skipped, all.skipped);
        }
    }
}
