//! Per-level pruning probabilities `p_up(m)` and `p_down(m)`.
//!
//! `p_up(m, p)` is the probability that an `m`-dimensional subspace
//! turns out outlying for point `p` (enabling upward pruning), and
//! `p_down(m, p)` the probability it turns out non-outlying (enabling
//! downward pruning). The paper fixes them during the learning phase
//! (§3.2) and replaces them with learned averages for query points.

use crate::error::HosError;
use crate::Result;

/// Per-level pruning probabilities, indexed by dimensionality
/// `1..=d` (index 0 is unused padding).
#[derive(Clone, Debug, PartialEq)]
pub struct Priors {
    p_up: Vec<f64>,
    p_down: Vec<f64>,
}

impl Priors {
    /// The fixed priors of §3.2 used while learning:
    ///
    /// * `m = 1`: `p_up = 1`, `p_down = 0` (nothing below to prune);
    /// * `m = d`: `p_up = 0`, `p_down = 1` (nothing above to prune);
    /// * otherwise both `0.5`.
    pub fn uniform(d: usize) -> Self {
        assert!(d >= 1);
        let mut p_up = vec![0.5; d + 1];
        let mut p_down = vec![0.5; d + 1];
        p_up[0] = 0.0;
        p_down[0] = 0.0;
        p_up[1] = 1.0;
        p_down[1] = 0.0;
        p_up[d] = 0.0;
        p_down[d] = 1.0;
        if d == 1 {
            // Degenerate: the single level has nothing to prune either way.
            p_up[1] = 0.0;
            p_down[1] = 0.0;
        }
        Priors { p_up, p_down }
    }

    /// Builds priors from explicit per-level values (index = level,
    /// length `d + 1`, index 0 ignored). The paper's boundary
    /// conventions `p_down(1) = p_up(d) = 0` are enforced.
    pub fn from_values(mut p_up: Vec<f64>, mut p_down: Vec<f64>) -> Result<Self> {
        if p_up.len() != p_down.len() || p_up.len() < 2 {
            return Err(HosError::Config(format!(
                "prior vectors must have equal length >= 2, got {} and {}",
                p_up.len(),
                p_down.len()
            )));
        }
        for (m, (&u, &dn)) in p_up.iter().zip(&p_down).enumerate().skip(1) {
            if !(0.0..=1.0).contains(&u) || !(0.0..=1.0).contains(&dn) {
                return Err(HosError::Config(format!(
                    "priors at level {m} outside [0,1]: p_up={u}, p_down={dn}"
                )));
            }
        }
        let d = p_up.len() - 1;
        p_down[1] = 0.0;
        p_up[d] = 0.0;
        Ok(Priors { p_up, p_down })
    }

    /// Dimensionality these priors cover.
    pub fn dim(&self) -> usize {
        self.p_up.len() - 1
    }

    /// `p_up(m)`.
    pub fn up(&self, m: usize) -> f64 {
        self.p_up[m]
    }

    /// `p_down(m)`.
    pub fn down(&self, m: usize) -> f64 {
        self.p_down[m]
    }

    /// All upward probabilities (index = level).
    pub fn up_all(&self) -> &[f64] {
        &self.p_up
    }

    /// All downward probabilities (index = level).
    pub fn down_all(&self) -> &[f64] {
        &self.p_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_paper_section_3_2() {
        let p = Priors::uniform(5);
        assert_eq!(p.dim(), 5);
        assert_eq!(p.up(1), 1.0);
        assert_eq!(p.down(1), 0.0);
        assert_eq!(p.up(5), 0.0);
        assert_eq!(p.down(5), 1.0);
        for m in 2..5 {
            assert_eq!(p.up(m), 0.5);
            assert_eq!(p.down(m), 0.5);
        }
    }

    #[test]
    fn degenerate_one_dimensional() {
        let p = Priors::uniform(1);
        assert_eq!(p.up(1), 0.0);
        assert_eq!(p.down(1), 0.0);
    }

    #[test]
    fn from_values_enforces_boundaries() {
        let d = 4;
        let p = Priors::from_values(vec![0.0, 0.9, 0.4, 0.2, 0.7], vec![0.0, 0.8, 0.6, 0.8, 0.3])
            .unwrap();
        assert_eq!(p.dim(), d);
        assert_eq!(p.down(1), 0.0, "paper: p_down(1) = 0");
        assert_eq!(p.up(d), 0.0, "paper: p_up(d) = 0");
        assert_eq!(p.up(2), 0.4);
        assert_eq!(p.down(3), 0.8);
        assert_eq!(p.up_all().len(), d + 1);
        assert_eq!(p.down_all().len(), d + 1);
    }

    #[test]
    fn from_values_validation() {
        assert!(Priors::from_values(vec![0.0, 1.5], vec![0.0, 0.5]).is_err());
        assert!(Priors::from_values(vec![0.0, 0.5], vec![0.0]).is_err());
        assert!(Priors::from_values(vec![], vec![]).is_err());
        assert!(Priors::from_values(vec![0.0, -0.1], vec![0.0, 0.5]).is_err());
    }
}
