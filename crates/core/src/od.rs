//! The outlying degree (OD) measure and threshold policies.
//!
//! `OD(p, s) = Σ_{i=1..k} dist_s(p, p_i)` over the k nearest
//! neighbours of `p` in subspace `s` (paper §2). The engine computes
//! it directly ([`hos_index::KnnEngine::od`]); this module adds the
//! pieces around it:
//!
//! * [`OdMode`] — raw OD (the paper) vs. a dimension-normalised
//!   variant (`OD / dim_scale(|s|)`), an extension that removes the
//!   global threshold's bias toward high-dimensional subspaces.
//!   **The normalised variant is not monotone under subspace
//!   inclusion**, so it is only sound with exhaustive evaluation; the
//!   dynamic search always uses `Raw`. Experiment E8b quantifies the
//!   difference.
//! * [`ThresholdPolicy`] — how the global distance threshold `T` is
//!   chosen. The paper treats `T` as given; in practice a quantile of
//!   full-space OD over a sample is the usable default.

use crate::error::HosError;
use crate::Result;
use hos_data::stats;
use hos_data::{Metric, Subspace};
use hos_index::KnnEngine;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

/// Which OD variant to compute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OdMode {
    /// The paper's raw sum of k-NN distances. Monotone under subspace
    /// inclusion — required by the pruning properties.
    #[default]
    Raw,
    /// `OD / dim_scale(|s|)` (metric-appropriate dimension
    /// normalisation). **Not monotone**; exhaustive evaluation only.
    DimNormalized,
}

impl OdMode {
    /// Computes the OD of `query` in `s` under this mode.
    pub fn od(
        &self,
        engine: &dyn KnnEngine,
        query: &[f64],
        k: usize,
        s: Subspace,
        exclude: Option<usize>,
    ) -> f64 {
        let raw = engine.od(query, k, s, exclude);
        match self {
            OdMode::Raw => raw,
            OdMode::DimNormalized => raw / engine.metric().dim_scale(s.dim()),
        }
    }

    /// Applies the mode's normalisation to an already-computed raw OD.
    pub fn normalize(&self, raw: f64, metric: Metric, m: usize) -> f64 {
        match self {
            OdMode::Raw => raw,
            OdMode::DimNormalized => raw / metric.dim_scale(m),
        }
    }
}

/// How the global OD threshold `T` is determined.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ThresholdPolicy {
    /// Use this exact value (the paper's formulation: `T` is an input).
    Fixed(f64),
    /// Sample up to `sample` dataset points, compute each one's
    /// full-space OD (self excluded), and use the `q`-quantile.
    /// Because OD is maximal in the full space, a point whose
    /// full-space OD is below `T` has **no** outlying subspace, so
    /// `q = 0.95` makes roughly the top 5% of points interesting.
    FullSpaceQuantile {
        /// Quantile in `[0, 1]`.
        q: f64,
        /// Sample size cap.
        sample: usize,
    },
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        ThresholdPolicy::FullSpaceQuantile {
            q: 0.95,
            sample: 200,
        }
    }
}

impl ThresholdPolicy {
    /// Resolves the policy to a concrete threshold value.
    pub fn resolve(&self, engine: &dyn KnnEngine, k: usize, seed: u64) -> Result<f64> {
        match *self {
            ThresholdPolicy::Fixed(t) => {
                if !t.is_finite() || t <= 0.0 {
                    return Err(HosError::Config(format!(
                        "fixed threshold must be positive and finite, got {t}"
                    )));
                }
                Ok(t)
            }
            ThresholdPolicy::FullSpaceQuantile { q, sample } => {
                if !(0.0..=1.0).contains(&q) {
                    return Err(HosError::Config(format!("quantile {q} outside [0,1]")));
                }
                if sample == 0 {
                    return Err(HosError::Config("threshold sample must be positive".into()));
                }
                let ds = engine.dataset();
                if ds.live_len() == 0 {
                    return Err(HosError::Config(
                        "cannot derive a threshold from an empty dataset".into(),
                    ));
                }
                let full = ds.full_space();
                // Live rows only: after streaming removals the
                // tombstoned rows must not contribute sample ODs.
                let mut ids: Vec<usize> = ds.live_ids().collect();
                let mut rng = StdRng::seed_from_u64(seed);
                ids.shuffle(&mut rng);
                ids.truncate(sample);
                let ods: Vec<f64> = ids
                    .iter()
                    .map(|&id| engine.od(ds.row(id), k, full, Some(id)))
                    .collect();
                let t = stats::quantile(&ods, q)?;
                if t <= 0.0 {
                    return Err(HosError::Config(
                        "derived threshold is not positive (degenerate data?)".into(),
                    ));
                }
                Ok(t)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_data::Dataset;
    use hos_index::LinearScan;

    fn engine() -> LinearScan {
        // A tight cluster plus one far point.
        let mut rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64 * 0.01, (i % 5) as f64 * 0.01])
            .collect();
        rows.push(vec![100.0, 100.0]);
        LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2)
    }

    #[test]
    fn raw_mode_equals_engine_od() {
        let e = engine();
        let s = Subspace::full(2);
        let q = [0.0, 0.0];
        assert_eq!(OdMode::Raw.od(&e, &q, 3, s, None), e.od(&q, 3, s, None));
    }

    #[test]
    fn normalized_mode_divides_by_dim_scale() {
        let e = engine();
        let s = Subspace::full(2);
        let q = [0.0, 0.0];
        let raw = e.od(&q, 3, s, None);
        let norm = OdMode::DimNormalized.od(&e, &q, 3, s, None);
        assert!((norm - raw / 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(OdMode::Raw.normalize(raw, Metric::L2, 2), raw);
        assert!((OdMode::DimNormalized.normalize(raw, Metric::L2, 2) - norm).abs() < 1e-12);
    }

    #[test]
    fn fixed_threshold_validation() {
        let e = engine();
        assert_eq!(ThresholdPolicy::Fixed(2.5).resolve(&e, 3, 0).unwrap(), 2.5);
        assert!(ThresholdPolicy::Fixed(0.0).resolve(&e, 3, 0).is_err());
        assert!(ThresholdPolicy::Fixed(-1.0).resolve(&e, 3, 0).is_err());
        assert!(ThresholdPolicy::Fixed(f64::NAN).resolve(&e, 3, 0).is_err());
    }

    #[test]
    fn quantile_threshold_separates_planted_outlier() {
        let e = engine();
        let t = ThresholdPolicy::FullSpaceQuantile {
            q: 0.9,
            sample: 100,
        }
        .resolve(&e, 3, 7)
        .unwrap();
        // The far point's full-space OD must exceed the threshold; the
        // cluster core must fall below it.
        let ds = e.dataset();
        let far = e.od(ds.row(50), 3, ds.full_space(), Some(50));
        let core = e.od(ds.row(0), 3, ds.full_space(), Some(0));
        assert!(far > t, "far OD {far} <= T {t}");
        assert!(core < t, "core OD {core} >= T {t}");
    }

    #[test]
    fn quantile_threshold_validation() {
        let e = engine();
        assert!(ThresholdPolicy::FullSpaceQuantile { q: 1.5, sample: 10 }
            .resolve(&e, 3, 0)
            .is_err());
        assert!(ThresholdPolicy::FullSpaceQuantile { q: 0.5, sample: 0 }
            .resolve(&e, 3, 0)
            .is_err());
        let empty = LinearScan::new(Dataset::empty(), Metric::L2);
        assert!(ThresholdPolicy::default().resolve(&empty, 3, 0).is_err());
    }

    #[test]
    fn quantile_threshold_is_deterministic_per_seed() {
        let e = engine();
        let p = ThresholdPolicy::FullSpaceQuantile { q: 0.8, sample: 20 };
        assert_eq!(p.resolve(&e, 3, 5).unwrap(), p.resolve(&e, 3, 5).unwrap());
    }
}
