//! Persistence for fitted models.
//!
//! Threshold resolution and the sampling-based learning pass are the
//! expensive part of `HosMiner::fit`; a demo session (or production
//! deployment) wants to pay them once. [`ModelFile`] captures the
//! fitted state — `k`, metric, threshold and learned priors — in a
//! small line-oriented text format that is trivially diffable and
//! versioned.
//!
//! The *dataset* is deliberately not part of the model: it travels as
//! CSV next to it, and [`ModelFile::into_miner`] re-indexes on load
//! (index build is cheap relative to learning and keeps the file
//! format independent of engine internals).

use crate::error::HosError;
use crate::learning::LearnedModel;
use crate::miner::{HosMiner, HosMinerConfig};
use crate::od::ThresholdPolicy;
use crate::priors::Priors;
use crate::search::SearchStats;
use crate::Result;
use hos_data::{Dataset, Metric};
use hos_index::Engine;
use std::fmt::Write as _;
use std::path::Path;

const MAGIC: &str = "hos-miner-model";
const VERSION: u32 = 1;

/// A serialisable snapshot of a fitted model.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelFile {
    /// Neighbour count.
    pub k: usize,
    /// Metric used at fit time.
    pub metric: Metric,
    /// k-NN engine to rebuild on load.
    pub engine: Engine,
    /// The resolved global threshold.
    pub threshold: f64,
    /// Learned (or uniform) priors.
    pub priors: Priors,
    /// How many samples the learning pass used.
    pub samples: usize,
}

impl ModelFile {
    /// Snapshots a fitted miner.
    pub fn from_miner(miner: &HosMiner) -> Self {
        ModelFile {
            k: miner.config().k,
            metric: miner.config().metric,
            engine: miner.config().engine,
            threshold: miner.threshold(),
            priors: miner.model().priors.clone(),
            samples: miner.model().samples,
        }
    }

    /// Serialises to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC} v{VERSION}");
        let _ = writeln!(out, "k {}", self.k);
        let _ = writeln!(out, "metric {}", self.metric.name());
        let _ = writeln!(out, "engine {}", self.engine);
        let _ = writeln!(out, "threshold {:?}", self.threshold);
        let _ = writeln!(out, "samples {}", self.samples);
        let join = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x:?}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(out, "p_up {}", join(self.priors.up_all()));
        let _ = writeln!(out, "p_down {}", join(self.priors.down_all()));
        out
    }

    /// Parses the text format.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        if header != format!("{MAGIC} v{VERSION}") {
            return Err(HosError::Config(format!(
                "unrecognised model header {header:?} (expected \"{MAGIC} v{VERSION}\")"
            )));
        }
        let mut k = None;
        let mut metric = None;
        let mut engine = None;
        let mut threshold = None;
        let mut samples = None;
        let mut p_up: Option<Vec<f64>> = None;
        let mut p_down: Option<Vec<f64>> = None;
        for (lineno, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once(' ').ok_or_else(|| {
                HosError::Config(format!("malformed model line {}: {line:?}", lineno + 2))
            })?;
            let parse_vec = |v: &str| -> Result<Vec<f64>> {
                v.split(',')
                    .map(|x| {
                        x.trim()
                            .parse::<f64>()
                            .map_err(|_| HosError::Config(format!("bad float {x:?} in model")))
                    })
                    .collect()
            };
            match key {
                "k" => {
                    k = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| HosError::Config(format!("bad k {value:?}")))?,
                    )
                }
                "metric" => {
                    metric = Some(match value {
                        "L1" => Metric::L1,
                        "L2" => Metric::L2,
                        "Linf" => Metric::LInf,
                        other => {
                            if let Some(p) = other.strip_prefix('L') {
                                Metric::Lp(p.parse().map_err(|_| {
                                    HosError::Config(format!("bad metric {other:?}"))
                                })?)
                            } else {
                                return Err(HosError::Config(format!("bad metric {other:?}")));
                            }
                        }
                    })
                }
                "engine" => engine = Some(value.parse::<Engine>().map_err(HosError::Config)?),
                "threshold" => {
                    threshold = Some(
                        value
                            .parse::<f64>()
                            .map_err(|_| HosError::Config(format!("bad threshold {value:?}")))?,
                    )
                }
                "samples" => {
                    samples = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| HosError::Config(format!("bad samples {value:?}")))?,
                    )
                }
                "p_up" => p_up = Some(parse_vec(value)?),
                "p_down" => p_down = Some(parse_vec(value)?),
                other => return Err(HosError::Config(format!("unknown model key {other:?}"))),
            }
        }
        let priors = Priors::from_values(
            p_up.ok_or_else(|| HosError::Config("model missing p_up".into()))?,
            p_down.ok_or_else(|| HosError::Config("model missing p_down".into()))?,
        )?;
        Ok(ModelFile {
            k: k.ok_or_else(|| HosError::Config("model missing k".into()))?,
            metric: metric.ok_or_else(|| HosError::Config("model missing metric".into()))?,
            engine: engine.unwrap_or_default(),
            threshold: threshold
                .ok_or_else(|| HosError::Config("model missing threshold".into()))?,
            priors,
            samples: samples.unwrap_or(0),
        })
    }

    /// Writes the model to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        std::fs::write(path, self.to_text()).map_err(|e| HosError::Data(e.into()))
    }

    /// Reads a model from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|e| HosError::Data(e.into()))?;
        Self::from_text(&text)
    }

    /// Rebuilds a ready-to-query miner over a dataset, **skipping**
    /// threshold resolution and learning (they come from the file).
    ///
    /// The dataset must have the dimensionality the model was fitted
    /// on; it need not be byte-identical, but priors and threshold are
    /// only meaningful for data from the same distribution.
    pub fn into_miner(self, dataset: Dataset) -> Result<HosMiner> {
        self.into_miner_with(dataset, 1, 1)
    }

    /// [`ModelFile::into_miner`] with machine-specific execution
    /// parameters: `shards` data partitions for intra-query
    /// parallelism and `threads` workers. Parallelism is not part of
    /// the persisted model — the same file serves a laptop and a
    /// 64-core box — so it is supplied at load time. Results are
    /// bit-identical regardless of either value.
    pub fn into_miner_with(
        self,
        dataset: Dataset,
        shards: usize,
        threads: usize,
    ) -> Result<HosMiner> {
        if dataset.dim() != self.priors.dim() {
            return Err(HosError::Config(format!(
                "model was fitted on {} dimensions, dataset has {}",
                self.priors.dim(),
                dataset.dim()
            )));
        }
        let config = HosMinerConfig {
            k: self.k,
            threshold: ThresholdPolicy::Fixed(self.threshold),
            metric: self.metric,
            engine: self.engine,
            sample_size: 0,
            shards,
            threads: threads.max(1),
            ..HosMinerConfig::default()
        };
        let model = LearnedModel {
            priors: self.priors,
            samples: self.samples,
            threshold: self.threshold,
            total_stats: SearchStats::default(),
        };
        HosMiner::from_parts(dataset, config, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::od::ThresholdPolicy;
    use hos_data::synth::uniform;

    fn fitted() -> (HosMiner, Dataset) {
        let mut ds = uniform(200, 4, 0.0, 1.0, 9).unwrap();
        ds.push_row(&[8.0, 0.5, 0.5, 0.5]).unwrap();
        let miner = HosMiner::fit(
            ds.clone(),
            HosMinerConfig {
                k: 4,
                threshold: ThresholdPolicy::FullSpaceQuantile {
                    q: 0.95,
                    sample: 100,
                },
                sample_size: 10,
                ..HosMinerConfig::default()
            },
        )
        .unwrap();
        (miner, ds)
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let (miner, _) = fitted();
        let m = ModelFile::from_miner(&miner);
        let text = m.to_text();
        let back = ModelFile::from_text(&text).unwrap();
        assert_eq!(m, back);
        // f64 round-trip via {:?} is exact.
        assert_eq!(m.threshold, back.threshold);
        assert_eq!(m.priors, back.priors);
    }

    #[test]
    fn loaded_model_answers_identically() {
        let (miner, ds) = fitted();
        let snapshot = ModelFile::from_miner(&miner);
        let restored = snapshot.into_miner(ds).unwrap();
        for id in [0, 50, 200] {
            let a = miner.query_id(id).unwrap();
            let b = restored.query_id(id).unwrap();
            assert_eq!(a.minimal, b.minimal, "point {id}");
            assert_eq!(a.stats.od_evals, b.stats.od_evals, "point {id}");
        }
        assert_eq!(restored.threshold(), miner.threshold());
    }

    #[test]
    fn file_roundtrip() {
        let (miner, _) = fitted();
        let path = std::env::temp_dir().join("hos_model_io_test.model");
        let m = ModelFile::from_miner(&miner);
        m.save(&path).unwrap();
        let back = ModelFile::load(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parse_errors() {
        assert!(ModelFile::from_text("").is_err());
        assert!(ModelFile::from_text("wrong header").is_err());
        let (miner, _) = fitted();
        let good = ModelFile::from_miner(&miner).to_text();
        // Drop a required line.
        let missing: String = good
            .lines()
            .filter(|l| !l.starts_with("p_up"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(ModelFile::from_text(&missing).is_err());
        // Corrupt a float.
        let corrupt = good.replace("threshold ", "threshold oops");
        assert!(ModelFile::from_text(&corrupt).is_err());
        // Unknown key.
        let extra = format!("{good}mystery 42\n");
        assert!(ModelFile::from_text(&extra).is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (miner, _) = fitted();
        let m = ModelFile::from_miner(&miner);
        let other = uniform(50, 3, 0.0, 1.0, 1).unwrap();
        assert!(m.into_miner(other).is_err());
    }

    #[test]
    fn metric_names_roundtrip() {
        for metric in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(3.0)] {
            let m = ModelFile {
                k: 2,
                metric,
                engine: Engine::Linear,
                threshold: 1.0,
                priors: Priors::uniform(3),
                samples: 0,
            };
            let back = ModelFile::from_text(&m.to_text()).unwrap();
            assert_eq!(back.metric, metric);
        }
    }
}
