//! Human-readable explanations of query outcomes.
//!
//! The demo's audience-facing promise is *insight*: not just "point p
//! is outlying in \[2,4\]" but why. This module decomposes a result
//! into the pieces a user acts on:
//!
//! * per-dimension **marginal deviation** of the query from the data
//!   (robust z-score via median/MAD, so outliers in the data don't
//!   mask themselves);
//! * per minimal subspace, the **OD margin** over the threshold and
//!   the share each member dimension contributes to the distance mass
//!   to the k nearest neighbours in that subspace;
//! * the nearest neighbours themselves, for inspection.

use crate::miner::{HosMiner, QueryOutcome};
use crate::Result;
use hos_data::{stats, PointId, Subspace};

/// Deviation of the query in one dimension.
#[derive(Clone, Debug)]
pub struct DimDeviation {
    /// 0-based dimension.
    pub dim: usize,
    /// Query coordinate.
    pub value: f64,
    /// Dataset median of the dimension.
    pub median: f64,
    /// Robust z-score: `(value - median) / (1.4826 * MAD)` (0 when the
    /// dimension is constant).
    pub robust_z: f64,
}

/// Explanation of one minimal outlying subspace.
#[derive(Clone, Debug)]
pub struct SubspaceExplanation {
    /// The subspace.
    pub subspace: Subspace,
    /// Its OD for the query.
    pub od: f64,
    /// `od / threshold` — how decisively it crosses.
    pub margin: f64,
    /// For each member dimension, its share of the summed
    /// (pre-metric) distance mass to the k nearest neighbours in this
    /// subspace; shares sum to 1.
    pub dim_shares: Vec<(usize, f64)>,
    /// The k nearest neighbours in this subspace.
    pub neighbors: Vec<(PointId, f64)>,
}

/// A complete explanation of a query outcome.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// Marginal deviations, sorted by |robust z| descending.
    pub deviations: Vec<DimDeviation>,
    /// One entry per minimal outlying subspace.
    pub subspaces: Vec<SubspaceExplanation>,
    /// The threshold the outcome was computed against.
    pub threshold: f64,
}

impl Explanation {
    /// Dimensions whose marginal deviation alone looks unremarkable
    /// (|robust z| < 2) yet which participate in an outlying subspace —
    /// the "only the combination is anomalous" cases that motivate the
    /// paper.
    pub fn combination_only_dims(&self) -> Vec<usize> {
        let marginal_ok: Vec<usize> = self
            .deviations
            .iter()
            .filter(|d| d.robust_z.abs() < 2.0)
            .map(|d| d.dim)
            .collect();
        let mut out: Vec<usize> = self
            .subspaces
            .iter()
            .flat_map(|s| s.subspace.dims())
            .filter(|d| marginal_ok.contains(d))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Median and MAD of a column.
fn median_mad(col: &[f64]) -> (f64, f64) {
    let median = stats::quantile(col, 0.5).expect("non-empty column");
    let deviations: Vec<f64> = col.iter().map(|v| (v - median).abs()).collect();
    let mad = stats::quantile(&deviations, 0.5).expect("non-empty");
    (median, mad)
}

/// Explains a query outcome produced by `miner` for `query`.
///
/// `query` must be the same coordinates the outcome was computed for
/// (after any normalisation), and `exclude` the same exclusion id.
pub fn explain(
    miner: &HosMiner,
    query: &[f64],
    exclude: Option<PointId>,
    outcome: &QueryOutcome,
) -> Result<Explanation> {
    let engine = miner.engine();
    let ds = engine.dataset();
    let k = miner.config().k;
    let metric = engine.metric();

    let mut deviations: Vec<DimDeviation> = (0..ds.dim())
        .map(|dim| {
            let col = ds.column_vec(dim);
            let (median, mad) = median_mad(&col);
            let scale = 1.4826 * mad;
            let robust_z = if scale > 0.0 {
                (query[dim] - median) / scale
            } else {
                0.0
            };
            DimDeviation {
                dim,
                value: query[dim],
                median,
                robust_z,
            }
        })
        .collect();
    deviations.sort_by(|a, b| {
        b.robust_z
            .abs()
            .partial_cmp(&a.robust_z.abs())
            .expect("finite")
            .then(a.dim.cmp(&b.dim))
    });

    let mut subspaces = Vec::with_capacity(outcome.minimal.len());
    for &s in &outcome.minimal {
        let neighbors: Vec<(PointId, f64)> = engine
            .knn(query, k, s, exclude)
            .into_iter()
            .map(|n| (n.id, n.dist))
            .collect();
        let od: f64 = neighbors.iter().map(|(_, d)| d).sum();
        // Per-dimension share of the pre-metric distance mass.
        let mut shares: Vec<(usize, f64)> = s.dims().map(|d| (d, 0.0)).collect();
        let mut total = 0.0;
        for &(id, _) in &neighbors {
            let row = ds.row(id);
            for (slot, dim) in shares.iter_mut().zip(s.dims()) {
                let contrib = metric.accumulate(0.0, (query[dim] - row[dim]).abs());
                slot.1 += contrib;
                total += contrib;
            }
        }
        if total > 0.0 {
            for slot in &mut shares {
                slot.1 /= total;
            }
        }
        shares.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        subspaces.push(SubspaceExplanation {
            subspace: s,
            od,
            margin: od / miner.threshold(),
            dim_shares: shares,
            neighbors,
        });
    }

    Ok(Explanation {
        deviations,
        subspaces,
        threshold: miner.threshold(),
    })
}

/// Renders an explanation as indented plain text (used by the CLI's
/// `--verbose` query output).
pub fn render(explanation: &Explanation, names: Option<&[String]>) -> String {
    use std::fmt::Write as _;
    let name = |dim: usize| -> String {
        names
            .and_then(|n| n.get(dim))
            .cloned()
            .unwrap_or_else(|| format!("x{}", dim + 1))
    };
    let mut out = String::new();
    let _ = writeln!(out, "marginal deviations (robust z, |z| >= 1 shown):");
    let mut shown = 0;
    for d in &explanation.deviations {
        if d.robust_z.abs() >= 1.0 {
            let _ = writeln!(
                out,
                "  {:<12} value {:>10.4}  median {:>10.4}  z {:>7.2}",
                name(d.dim),
                d.value,
                d.median,
                d.robust_z
            );
            shown += 1;
        }
    }
    if shown == 0 {
        let _ = writeln!(out, "  (every coordinate is marginally unremarkable)");
    }
    for s in &explanation.subspaces {
        let _ = writeln!(
            out,
            "subspace {}: OD {:.4} = {:.2}x threshold",
            s.subspace, s.od, s.margin
        );
        for &(dim, share) in &s.dim_shares {
            let _ = writeln!(
                out,
                "  {:<12} {:>5.1}% of the distance mass",
                name(dim),
                share * 100.0
            );
        }
    }
    let combo = explanation.combination_only_dims();
    if !combo.is_empty() {
        let combo_names: Vec<String> = combo.iter().map(|&d| name(d)).collect();
        let _ = writeln!(
            out,
            "note: {} unremarkable alone, anomalous only in combination",
            combo_names.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::HosMinerConfig;
    use crate::od::ThresholdPolicy;
    use hos_data::synth::correlated::{figure1_views, CorrelatedSpec};

    fn fig1_miner() -> (HosMiner, Vec<f64>) {
        let fig = figure1_views(&CorrelatedSpec::default()).unwrap();
        let miner = HosMiner::fit(
            fig.dataset,
            HosMinerConfig {
                k: 5,
                threshold: ThresholdPolicy::FullSpaceQuantile {
                    q: 0.98,
                    sample: 200,
                },
                sample_size: 5,
                ..HosMinerConfig::default()
            },
        )
        .unwrap();
        (miner, fig.query)
    }

    #[test]
    fn explains_combination_only_outlier() {
        let (miner, query) = fig1_miner();
        let outcome = miner.query_point(&query).unwrap();
        assert!(!outcome.minimal.is_empty());
        let ex = explain(&miner, &query, None, &outcome).unwrap();
        // The Figure 1 query is marginally mild in every coordinate.
        for d in &ex.deviations {
            assert!(d.robust_z.abs() < 3.5, "dim {} z {}", d.dim, d.robust_z);
        }
        // Its outlying view [1,2] must be explained with margin > 1.
        let s = &ex.subspaces[0];
        assert!(s.margin >= 1.0);
        assert_eq!(s.neighbors.len(), 5);
        // Distance shares sum to ~1 and cover both dims.
        let total: f64 = s.dim_shares.iter().map(|x| x.1).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(s.dim_shares.len(), 2);
        // The combination-only note fires for the correlated pair.
        assert!(!ex.combination_only_dims().is_empty());
    }

    #[test]
    fn render_produces_readable_text() {
        let (miner, query) = fig1_miner();
        let outcome = miner.query_point(&query).unwrap();
        let ex = explain(&miner, &query, None, &outcome).unwrap();
        let text = render(&ex, None);
        assert!(text.contains("marginal deviations"));
        assert!(text.contains("threshold"));
        assert!(text.contains("x1"));
        let named = render(
            &ex,
            Some(&[
                "a".into(),
                "b".into(),
                "c".into(),
                "d".into(),
                "e".into(),
                "f".into(),
            ]),
        );
        assert!(named.contains('a'));
    }

    #[test]
    fn inlier_explanation_is_empty_but_valid() {
        let (miner, _) = fig1_miner();
        let centre = vec![0.5; 6];
        let outcome = miner.query_point(&centre).unwrap();
        assert!(outcome.minimal.is_empty());
        let ex = explain(&miner, &centre, None, &outcome).unwrap();
        assert!(ex.subspaces.is_empty());
        assert_eq!(ex.deviations.len(), 6);
    }

    #[test]
    fn median_mad_robustness() {
        // One wild value barely moves median/MAD.
        let mut col: Vec<f64> = (0..99).map(|i| i as f64 * 0.01).collect();
        col.push(1e6);
        let (median, mad) = median_mad(&col);
        assert!((median - 0.5).abs() < 0.02);
        assert!(mad < 0.3);
        // Constant column: zero MAD, zero z (no division by zero).
        let (m2, mad2) = median_mad(&[7.0; 10]);
        assert_eq!(m2, 7.0);
        assert_eq!(mad2, 0.0);
    }
}
