//! # hos-core
//!
//! The HOS-Miner algorithm proper (Zhang, Lou, Ling, Wang — VLDB'04):
//! given a query point, find every subspace in which its **outlying
//! degree** (sum of distances to its k nearest neighbours, paper §2)
//! meets a global threshold `T`, and return the minimal ones.
//!
//! Module map (mirrors the paper's Figure 2 architecture):
//!
//! * [`od`] — the OD measure, the dimension-normalised extension and
//!   threshold-selection policies.
//! * [`priors`] — per-level pruning probabilities `p_up(m)` /
//!   `p_down(m)`: the fixed priors of §3.2 and learned values.
//! * [`search`] — the dynamic subspace search of §3.3: evaluate the
//!   lattice level with the highest Total Saving Factor, prune up and
//!   down after every evaluation, repeat until the lattice closes.
//! * [`batch`] — the parallel multi-query front-end: many independent
//!   dynamic searches fanned out across threads, bit-reproducibly.
//! * [`learning`] — the sampling-based learning process of §3.2.
//! * [`filter`] — the result-refinement filter of §3.4 (keep only
//!   minimal outlying subspaces).
//! * [`miner`] — the `HosMiner` facade tying indexing, learning,
//!   search and filtering together.

pub mod batch;
pub mod error;
pub mod explain;
pub mod filter;
pub mod frontier;
pub mod learning;
pub mod miner;
pub mod model_io;
pub mod od;
pub mod priors;
pub mod scan;
pub mod search;

pub use batch::{batch_search, BatchQuery};
pub use error::HosError;
pub use explain::{explain, Explanation};
pub use filter::minimal_subspaces;
pub use frontier::{frontier_search, FrontierOutcome};
pub use learning::{learn, learn_full, learn_with_smoothing, FractionMode, LearnedModel};
pub use miner::{HosMiner, HosMinerConfig, QueryOutcome, QuerySpec};
pub use model_io::ModelFile;
pub use od::{OdMode, ThresholdPolicy};
pub use priors::Priors;
pub use scan::{scan_outliers, ScanHit, ScanReport};
pub use search::{dynamic_search, ScoredSubspace, SearchOutcome, SearchStats};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, HosError>;
