//! Result refinement (paper §3.4): keep only *minimal* outlying
//! subspaces.
//!
//! By Property 2, every superset of an outlying subspace is itself
//! outlying, so the superset members of the answer set carry no
//! information. The filter performs the paper's upward selection:
//! examine subspaces from the lowest dimensionality up, keep one only
//! if no previously kept subspace is a subset of it.

use hos_data::Subspace;

/// Filters an answer set down to its minimal members.
///
/// The output is sorted by (dimensionality, mask) and is guaranteed to
/// be an antichain: no element is a subset of another. The input need
/// not be sorted and may contain duplicates.
///
/// ```
/// use hos_core::minimal_subspaces;
/// use hos_data::Subspace;
///
/// // The paper's §3.4 example (1-based): [1,3], [2,4] and all their
/// // supersets reduce to just [1,3] and [2,4].
/// let answer: Vec<Subspace> =
///     ["[1,3]", "[2,4]", "[1,2,3]", "[1,2,4]", "[1,3,4]", "[2,3,4]", "[1,2,3,4]"]
///         .iter().map(|s| s.parse().unwrap()).collect();
/// let minimal = minimal_subspaces(&answer);
/// assert_eq!(minimal, vec!["[1,3]".parse().unwrap(), "[2,4]".parse().unwrap()]);
/// ```
pub fn minimal_subspaces(outlying: &[Subspace]) -> Vec<Subspace> {
    let mut sorted: Vec<Subspace> = outlying.to_vec();
    sorted.sort_by_key(|s| (s.dim(), s.mask()));
    sorted.dedup();
    let mut kept: Vec<Subspace> = Vec::new();
    for s in sorted {
        if !kept.iter().any(|m| m.is_subset_of(s)) {
            kept.push(s);
        }
    }
    kept
}

/// Checks whether `candidate` is covered by the minimal set, i.e. is a
/// superset of (or equal to) some minimal subspace. Together with
/// Property 2 this reconstructs the full answer set from the filtered
/// one.
pub fn covered_by(candidate: Subspace, minimal: &[Subspace]) -> bool {
    minimal.iter().any(|m| m.is_subset_of(candidate))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(dims: &[usize]) -> Subspace {
        Subspace::from_dims(dims)
    }

    #[test]
    fn papers_worked_example() {
        // Paper §3.4: outlying subspaces of a point in 4-d space are
        // [1,3], [2,4], [1,2,3], [1,2,4], [1,3,4], [2,3,4], [1,2,3,4];
        // the filter returns only [1,3] and [2,4].
        // (Paper uses 1-based dims; ours are 0-based.)
        let input = vec![
            s(&[0, 2]),
            s(&[1, 3]),
            s(&[0, 1, 2]),
            s(&[0, 1, 3]),
            s(&[0, 2, 3]),
            s(&[1, 2, 3]),
            s(&[0, 1, 2, 3]),
        ];
        let minimal = minimal_subspaces(&input);
        assert_eq!(minimal, vec![s(&[0, 2]), s(&[1, 3])]);
    }

    #[test]
    fn empty_input() {
        assert!(minimal_subspaces(&[]).is_empty());
    }

    #[test]
    fn singleton_kept() {
        let input = vec![s(&[1])];
        assert_eq!(minimal_subspaces(&input), input);
    }

    #[test]
    fn incomparable_sets_all_kept() {
        let input = vec![s(&[0, 1]), s(&[2, 3]), s(&[1, 2])];
        let out = minimal_subspaces(&input);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn duplicates_removed() {
        let input = vec![s(&[0]), s(&[0]), s(&[0, 1])];
        assert_eq!(minimal_subspaces(&input), vec![s(&[0])]);
    }

    #[test]
    fn unsorted_input_handled() {
        let input = vec![s(&[0, 1, 2]), s(&[0]), s(&[1, 2])];
        let out = minimal_subspaces(&input);
        assert_eq!(out, vec![s(&[0]), s(&[1, 2])]);
    }

    #[test]
    fn output_is_antichain() {
        let input: Vec<Subspace> = (1u64..32).map(Subspace::from_mask).collect();
        let out = minimal_subspaces(&input);
        for a in &out {
            for b in &out {
                if a != b {
                    assert!(!a.is_subset_of(*b), "{a} ⊆ {b}");
                }
            }
        }
        // All five singletons are the minimal frontier of the full lattice.
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn covered_by_reconstructs_answer_set() {
        let minimal = vec![s(&[0, 2]), s(&[1, 3])];
        assert!(covered_by(s(&[0, 2]), &minimal));
        assert!(covered_by(s(&[0, 1, 2]), &minimal));
        assert!(covered_by(s(&[0, 1, 2, 3]), &minimal));
        assert!(!covered_by(s(&[0, 1]), &minimal));
        assert!(!covered_by(s(&[0]), &minimal));
        assert!(!covered_by(s(&[2]), &[]));
    }
}
