//! The sampling-based learning process (paper §3.2).
//!
//! Before answering user queries, HOS-Miner randomly samples `S`
//! dataset points and runs the dynamic subspace search on each with
//! the fixed uniform priors. For every sample the search reports, per
//! lattice level `m`, the fraction of `m`-dimensional subspaces that
//! turned out outlying — that is `p_up(m, sp)`; its complement is
//! `p_down(m, sp)`. Averaging over samples (and fixing the boundary
//! conventions `p_down(1) = p_up(d) = 0`) yields the learned priors
//! used to order the lattice levels for real queries.
//!
//! Two points the paper leaves implicit, resolved here (and ablatable
//! in experiment E4):
//!
//! 1. **Which subspaces enter the fraction.** The paper initialises
//!    `p_up(m, sp) = p_down(m, sp) = 0.5` and updates a level "after
//!    all the m-dimensional subspaces have been evaluated for sp". We
//!    read this as: a level's fraction is computed over the subspaces
//!    the search actually *evaluated* there; a level the search
//!    disposed of purely by pruning keeps its initialised 0.5. (The
//!    alternative — exact fractions over whole levels, counting
//!    pruned dispositions — degenerates: random samples are almost
//!    all inliers whose exact fractions are identically zero, giving
//!    `p_up ≡ 0`, killing the TSF up-term and with it upward pruning
//!    for every future query. We implement both; the evaluated-only
//!    reading is the default.)
//! 2. **Smoothing.** Even evaluated-only fractions are noisy at small
//!    `S`, so the per-level averages are Laplace-smoothed toward the
//!    0.5 prior with pseudo-count `alpha` (default 1). `alpha = 0`
//!    gives the unsmoothed average.

use crate::priors::Priors;
use crate::search::{dynamic_search, SearchStats};
use crate::Result;
use crate::{error::HosError, od::ThresholdPolicy};
use hos_index::KnnEngine;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

/// The outcome of the learning phase.
#[derive(Clone, Debug)]
pub struct LearnedModel {
    /// The averaged priors.
    pub priors: Priors,
    /// How many sample points were actually searched.
    pub samples: usize,
    /// The threshold the searches used.
    pub threshold: f64,
    /// Accumulated cost of the learning searches.
    pub total_stats: SearchStats,
}

/// How a sample's per-level outlier fraction is computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FractionMode {
    /// Fractions over the subspaces the search *evaluated* at each
    /// level; untouched levels keep the initialised 0.5 (module docs,
    /// point 1). The default.
    #[default]
    EvaluatedOnly,
    /// The literal whole-level fraction, counting pruned dispositions
    /// (each level's exact share of outlying subspaces). Ablation
    /// E4 shows why this degrades outlier queries.
    WholeLevel,
}

/// Runs the learning process with the default smoothing
/// (`alpha = 1`). See [`learn_with_smoothing`].
pub fn learn(
    engine: &dyn KnnEngine,
    k: usize,
    threshold: f64,
    sample_size: usize,
    seed: u64,
    threads: usize,
) -> Result<LearnedModel> {
    learn_with_smoothing(engine, k, threshold, sample_size, seed, threads, 1.0)
}

/// Runs the learning process with explicit smoothing. See
/// [`learn_full`].
pub fn learn_with_smoothing(
    engine: &dyn KnnEngine,
    k: usize,
    threshold: f64,
    sample_size: usize,
    seed: u64,
    threads: usize,
    alpha: f64,
) -> Result<LearnedModel> {
    learn_full(
        engine,
        k,
        threshold,
        sample_size,
        seed,
        threads,
        alpha,
        FractionMode::EvaluatedOnly,
    )
}

/// Runs the learning process.
///
/// * `sample_size` — `S`; capped at the dataset size. `0` is allowed
///   and yields the uniform priors (useful as the "no learning"
///   ablation in experiment E4).
/// * `threshold` — the already-resolved global `T` (see
///   [`ThresholdPolicy`]).
/// * `alpha` — Laplace smoothing pseudo-count toward the uniform
///   prior; `0` gives the unsmoothed average (see module docs).
/// * `mode` — see [`FractionMode`].
#[allow(clippy::too_many_arguments)]
pub fn learn_full(
    engine: &dyn KnnEngine,
    k: usize,
    threshold: f64,
    sample_size: usize,
    seed: u64,
    threads: usize,
    alpha: f64,
    mode: FractionMode,
) -> Result<LearnedModel> {
    let ds = engine.dataset();
    let d = ds.dim();
    if d == 0 {
        return Err(HosError::Config("cannot learn on an empty dataset".into()));
    }
    if k == 0 {
        return Err(HosError::Config("k must be positive".into()));
    }
    if !(0.0..=1e6).contains(&alpha) {
        return Err(HosError::Config(format!(
            "smoothing alpha {alpha} out of range"
        )));
    }
    let uniform = Priors::uniform(d);
    if sample_size == 0 {
        return Ok(LearnedModel {
            priors: uniform,
            samples: 0,
            threshold,
            total_stats: SearchStats::default(),
        });
    }

    let mut ids: Vec<usize> = ds.live_ids().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    ids.truncate(sample_size);

    let mut sum_up = vec![0.0f64; d + 1];
    let mut total_stats = SearchStats::default();
    for &id in &ids {
        let row: Vec<f64> = ds.row(id).to_vec();
        let out = dynamic_search(engine, &row, Some(id), k, threshold, &uniform, threads);
        match mode {
            FractionMode::EvaluatedOnly => {
                for (m, &(evaluated, outlying)) in out.level_eval_stats.iter().enumerate() {
                    // Untouched levels keep the initialised 0.5
                    // (module docs, point 1).
                    sum_up[m] += if evaluated > 0 {
                        outlying as f64 / evaluated as f64
                    } else {
                        0.5
                    };
                }
            }
            FractionMode::WholeLevel => {
                for (m, &f) in out.level_outlier_fraction.iter().enumerate() {
                    sum_up[m] += f;
                }
            }
        }
        total_stats.od_evals += out.stats.od_evals;
        total_stats.pruned_outlier += out.stats.pruned_outlier;
        total_stats.pruned_non_outlier += out.stats.pruned_non_outlier;
        total_stats.rounds += out.stats.rounds;
        total_stats.seconds += out.stats.seconds;
        total_stats.lattice_size = out.stats.lattice_size;
    }

    let s = ids.len() as f64;
    let p_up: Vec<f64> = sum_up
        .iter()
        .map(|v| (v + alpha * 0.5) / (s + alpha))
        .collect();
    let p_down: Vec<f64> = p_up.iter().map(|v| 1.0 - v).collect();
    let priors = Priors::from_values(p_up, p_down)?;

    Ok(LearnedModel {
        priors,
        samples: ids.len(),
        threshold,
        total_stats,
    })
}

/// Convenience: resolve a threshold policy and learn in one step.
pub fn resolve_and_learn(
    engine: &dyn KnnEngine,
    k: usize,
    policy: ThresholdPolicy,
    sample_size: usize,
    seed: u64,
    threads: usize,
) -> Result<LearnedModel> {
    let t = policy.resolve(engine, k, seed)?;
    learn(engine, k, t, sample_size, seed, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_data::{Dataset, Metric};
    use hos_index::LinearScan;
    use rand::Rng;

    fn clustered_engine(seed: u64) -> LinearScan {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = 4;
        let mut rows = Vec::new();
        for _ in 0..150 {
            rows.push(
                (0..d)
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect::<Vec<f64>>(),
            );
        }
        // A few extreme points so some subspaces are outlying.
        rows.push(vec![10.0, 0.5, 0.5, 0.5]);
        rows.push(vec![0.5, 12.0, 0.5, 0.5]);
        LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2)
    }

    #[test]
    fn zero_samples_returns_uniform() {
        let e = clustered_engine(3);
        let m = learn(&e, 3, 1.0, 0, 0, 1).unwrap();
        assert_eq!(m.samples, 0);
        assert_eq!(m.priors, Priors::uniform(4));
        assert_eq!(m.total_stats.od_evals, 0);
    }

    #[test]
    fn learned_priors_are_valid_probabilities() {
        let e = clustered_engine(5);
        let m = learn(&e, 3, 2.0, 12, 7, 1).unwrap();
        assert_eq!(m.samples, 12);
        let d = 4;
        for lvl in 1..=d {
            let u = m.priors.up(lvl);
            let dn = m.priors.down(lvl);
            assert!((0.0..=1.0).contains(&u), "p_up({lvl}) = {u}");
            assert!((0.0..=1.0).contains(&dn), "p_down({lvl}) = {dn}");
        }
        // Paper boundary conventions survive the averaging.
        assert_eq!(m.priors.down(1), 0.0);
        assert_eq!(m.priors.up(d), 0.0);
        assert!(m.total_stats.od_evals > 0);
    }

    #[test]
    fn untouched_levels_keep_half_prior() {
        // A workload whose sample searches dispose of everything from
        // the full space alone (all inliers, high threshold): every
        // level except d is never evaluated, so the unsmoothed learned
        // p_up stays at the initialised 0.5.
        let e = clustered_engine(9);
        let m = learn_with_smoothing(&e, 3, 1e12, 6, 3, 1, 0.0).unwrap();
        for lvl in 2..4 {
            assert!(
                (m.priors.up(lvl) - 0.5).abs() < 1e-12,
                "level {lvl}: {}",
                m.priors.up(lvl)
            );
        }
        // And the evaluated top level observed only sub-threshold ODs.
        assert_eq!(m.priors.up(4), 0.0);
    }

    #[test]
    fn smoothing_pulls_toward_half() {
        let e = clustered_engine(9);
        let raw = learn_with_smoothing(&e, 3, 2.0, 10, 3, 1, 0.0).unwrap();
        let smooth = learn_with_smoothing(&e, 3, 2.0, 10, 3, 1, 4.0).unwrap();
        for lvl in 1..4 {
            let r = raw.priors.up(lvl);
            let s = smooth.priors.up(lvl);
            assert!(
                (s - 0.5).abs() <= (r - 0.5).abs() + 1e-12,
                "level {lvl}: smoothed {s} farther from 0.5 than raw {r}"
            );
        }
        assert!(learn_with_smoothing(&e, 3, 2.0, 4, 0, 1, -1.0).is_err());
    }

    #[test]
    fn sample_size_capped_at_dataset() {
        let e = clustered_engine(1);
        let m = learn(&e, 3, 2.0, 10_000, 0, 1).unwrap();
        assert_eq!(m.samples, e.dataset().len());
    }

    #[test]
    fn deterministic_per_seed() {
        let e = clustered_engine(2);
        let a = learn(&e, 3, 2.0, 8, 42, 1).unwrap();
        let b = learn(&e, 3, 2.0, 8, 42, 1).unwrap();
        assert_eq!(a.priors, b.priors);
        let c = learn(&e, 3, 2.0, 8, 43, 1).unwrap();
        // Different seed → different sample → (almost surely) different
        // priors; only check it does not crash and stays valid.
        assert_eq!(c.samples, 8);
    }

    #[test]
    fn validation() {
        let e = clustered_engine(2);
        assert!(learn(&e, 0, 2.0, 4, 0, 1).is_err());
        let empty = LinearScan::new(Dataset::empty(), Metric::L2);
        assert!(learn(&empty, 3, 2.0, 4, 0, 1).is_err());
    }

    #[test]
    fn resolve_and_learn_pipeline() {
        let e = clustered_engine(11);
        let m = resolve_and_learn(
            &e,
            3,
            ThresholdPolicy::FullSpaceQuantile { q: 0.9, sample: 50 },
            6,
            5,
            1,
        )
        .unwrap();
        assert!(m.threshold > 0.0);
        assert_eq!(m.samples, 6);
    }
}
