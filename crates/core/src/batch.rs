//! Parallel multi-query front-end.
//!
//! One HOS-Miner deployment serves many concurrent "why is this point
//! strange?" queries; [`batch_search`] fans a slice of query points
//! out across worker threads, each running the full dynamic subspace
//! search of [`crate::search`]. Queries are independent, so this
//! parallelises embarrassingly — and because `dynamic_search` itself
//! is deterministic, the fan-out is **bit-reproducible**: results (and
//! all `SearchStats` evaluation accounting except wall-clock time) are
//! identical to running the queries serially, regardless of thread
//! count. The `batch_search_deterministic` integration test pins this.
//!
//! Each worker evaluates its queries with per-level parallelism off
//! (`threads = 1` inside `dynamic_search`): with many queries in
//! flight, cross-query parallelism saturates the cores without the
//! oversubscription nested per-level fan-out would cause.

use crate::priors::Priors;
use crate::search::{dynamic_search, SearchOutcome};
use hos_data::PointId;
use hos_index::batch::parallel_map;
use hos_index::KnnEngine;

/// One query in a batch: the point and, when it is a dataset member,
/// its own id (excluded from its neighbourhoods).
#[derive(Clone, Copy, Debug)]
pub struct BatchQuery<'a> {
    /// Query coordinates (arity = dataset dimensionality).
    pub point: &'a [f64],
    /// The query's own id when it is a dataset member.
    pub exclude: Option<PointId>,
}

/// Runs [`dynamic_search`] for every query, fanned out across
/// `threads` workers, returning outcomes in input order.
///
/// Same panics as `dynamic_search` (`k == 0`, priors/query arity
/// mismatch), surfaced on the first offending query.
pub fn batch_search(
    engine: &dyn KnnEngine,
    queries: &[BatchQuery<'_>],
    k: usize,
    threshold: f64,
    priors: &Priors,
    threads: usize,
) -> Vec<SearchOutcome> {
    parallel_map(queries, threads, |q| {
        dynamic_search(engine, q.point, q.exclude, k, threshold, priors, 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_data::{Dataset, Metric, Subspace};
    use hos_index::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine() -> LinearScan {
        let mut rng = StdRng::seed_from_u64(11);
        let d = 5;
        let mut flat: Vec<f64> = (0..200 * d).map(|_| rng.gen_range(0.0..10.0)).collect();
        // One planted outlier along dims {0, 2}.
        flat.extend([80.0, 5.0, 80.0, 5.0, 5.0]);
        LinearScan::new(Dataset::from_flat(flat, d).unwrap(), Metric::L2)
    }

    #[test]
    fn parallel_identical_to_serial() {
        let e = engine();
        let rows: Vec<Vec<f64>> = (0..16).map(|i| e.dataset().row(i * 12).to_vec()).collect();
        let queries: Vec<BatchQuery<'_>> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| BatchQuery {
                point: r,
                exclude: Some(i * 12),
            })
            .collect();
        let priors = Priors::uniform(5);
        let serial = batch_search(&e, &queries, 4, 15.0, &priors, 1);
        let parallel = batch_search(&e, &queries, 4, 15.0, &priors, 8);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.outlying, b.outlying);
            assert_eq!(a.stats.od_evals, b.stats.od_evals);
            assert_eq!(a.stats.pruned_outlier, b.stats.pruned_outlier);
            assert_eq!(a.stats.pruned_non_outlier, b.stats.pruned_non_outlier);
            assert_eq!(a.stats.rounds, b.stats.rounds);
            assert_eq!(a.level_eval_stats, b.level_eval_stats);
        }
    }

    #[test]
    fn matches_individual_dynamic_searches() {
        let e = engine();
        let outlier: Vec<f64> = e.dataset().row(200).to_vec();
        let inlier: Vec<f64> = e.dataset().row(3).to_vec();
        let queries = [
            BatchQuery {
                point: &outlier,
                exclude: Some(200),
            },
            BatchQuery {
                point: &inlier,
                exclude: Some(3),
            },
        ];
        let priors = Priors::uniform(5);
        let batch = batch_search(&e, &queries, 4, 20.0, &priors, 2);
        for (q, got) in queries.iter().zip(&batch) {
            let solo = dynamic_search(&e, q.point, q.exclude, 4, 20.0, &priors, 1);
            assert_eq!(got.outlying, solo.outlying);
        }
        // The planted outlier must be found outlying around dims {0,2}.
        assert!(batch[0].contains(Subspace::from_dims(&[0, 2])) || !batch[0].outlying.is_empty());
        assert!(batch[1].outlying.is_empty());
    }

    #[test]
    fn empty_and_single_query() {
        let e = engine();
        let priors = Priors::uniform(5);
        assert!(batch_search(&e, &[], 4, 10.0, &priors, 4).is_empty());
        let row: Vec<f64> = e.dataset().row(0).to_vec();
        let one = [BatchQuery {
            point: &row,
            exclude: Some(0),
        }];
        assert_eq!(batch_search(&e, &one, 4, 10.0, &priors, 16).len(), 1);
    }
}
