//! The dynamic subspace search (paper §3.3).
//!
//! The search walks the subspace lattice **level by level, in TSF
//! order**: each round it computes the Total Saving Factor of every
//! level that still has open subspaces, evaluates the OD of every
//! open subspace at the winning level, and applies the two pruning
//! closures after each evaluation:
//!
//! * `OD >= T` — the subspace joins the answer set and every strict
//!   superset is pruned *in* (Property 2);
//! * `OD < T` — every strict subset is pruned *out* (Property 1).
//!
//! The search terminates when the lattice is closed: every subspace is
//! evaluated or pruned. Unlike a fixed bottom-up or top-down sweep,
//! the TSF ordering adapts to where pruning is most likely to pay —
//! that adaptivity is the paper's core algorithmic idea, and the
//! learned priors are what feed it.

use crate::priors::Priors;
use hos_data::{PointId, Subspace};
use hos_index::KnnEngine;
use hos_lattice::{Lattice, SubspaceState, TsfComputer};
use std::time::Instant;

/// One subspace in the answer set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredSubspace {
    /// The outlying subspace.
    pub subspace: Subspace,
    /// Its OD if it was evaluated directly; `None` when it entered the
    /// answer set through upward pruning (its OD is only known to be
    /// `>= T`).
    pub od: Option<f64>,
}

/// Search-cost accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SearchStats {
    /// OD (k-NN) evaluations performed.
    pub od_evals: u64,
    /// ODs computed in a level batch but discarded because an earlier
    /// evaluation *in the same batch* had already disposed of the
    /// subspace by pruning. Every batched OD is either consumed
    /// (`od_evals`) or wasted, so `od_evals + wasted_evals` equals the
    /// total ODs the engine computed for the search. With the current
    /// same-level batching this stays 0 — Property 1/2 closures only
    /// touch *strictly* smaller/larger subspaces, which live on other
    /// levels — but the counter measures the waste the moment any
    /// batching scheme (cross-level, speculative) can introduce it.
    pub wasted_evals: u64,
    /// Subspaces pruned in as certain outliers (Property 2).
    pub pruned_outlier: u64,
    /// Subspaces pruned out as certain non-outliers (Property 1).
    pub pruned_non_outlier: u64,
    /// Lattice nodes entered by the prefix-stack kernel: one per
    /// `O(n)` column fold (`hos_index::PrefixStack::node_visits`,
    /// summed per shard for sharded engines, where each fold streams
    /// `n / shards` rows). The testable cost claim of the kernel: a
    /// direct per-subspace recombine would pay `Σ|s|` folds over the
    /// evaluated subspaces; walker-order traversal pays at most that,
    /// and exactly one fold per node on full-lattice walks. Stays 0 on
    /// engine paths that never build a distance cache.
    pub nodes_visited: u64,
    /// Search rounds (levels evaluated).
    pub rounds: u32,
    /// Total non-empty subspaces in the lattice (`2^d - 1`).
    pub lattice_size: u64,
    /// Wall-clock duration of the search in seconds.
    pub seconds: f64,
}

impl SearchStats {
    /// Fraction of the lattice that needed a direct OD evaluation.
    pub fn evaluated_fraction(&self) -> f64 {
        if self.lattice_size == 0 {
            0.0
        } else {
            self.od_evals as f64 / self.lattice_size as f64
        }
    }
}

/// Complete outcome of one dynamic search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Every outlying subspace (evaluated or pruned-in), ascending by
    /// mask for determinism.
    pub outlying: Vec<ScoredSubspace>,
    /// Cost accounting.
    pub stats: SearchStats,
    /// Per-level fraction of subspaces that were outlying (index =
    /// level, `0..=d`; level 0 is 0), counting pruned dispositions —
    /// the exact fraction over the whole level.
    pub level_outlier_fraction: Vec<f64>,
    /// Per-level `(directly evaluated, evaluated with OD >= T)`
    /// counts. The learning phase derives `p_up(m, sp)` from these:
    /// the paper updates a level's probability only once subspaces of
    /// that level have actually been *evaluated*; untouched levels
    /// keep their initialised prior.
    pub level_eval_stats: Vec<(u64, u64)>,
}

impl SearchOutcome {
    /// Just the outlying subspaces, no scores.
    pub fn subspaces(&self) -> Vec<Subspace> {
        self.outlying.iter().map(|s| s.subspace).collect()
    }

    /// Whether a particular subspace was found outlying.
    pub fn contains(&self, s: Subspace) -> bool {
        self.outlying.iter().any(|x| x.subspace == s)
    }
}

/// Runs the dynamic subspace search for one query point.
///
/// * `engine` — k-NN engine over the dataset.
/// * `query` — the query point's coordinates (arity = dataset dim).
/// * `exclude` — the query's own id when it is a dataset member.
/// * `k`, `threshold` — the OD parameters.
/// * `priors` — per-level pruning probabilities (uniform during
///   learning, learned for user queries).
/// * `threads` — parallelism for per-level OD batches.
///
/// # Panics
/// Panics if `priors.dim()` differs from the dataset dimensionality,
/// or `k == 0` (upheld by [`crate::miner::HosMiner`]'s validation).
pub fn dynamic_search(
    engine: &dyn KnnEngine,
    query: &[f64],
    exclude: Option<PointId>,
    k: usize,
    threshold: f64,
    priors: &Priors,
    threads: usize,
) -> SearchOutcome {
    let d = engine.dataset().dim();
    assert!(k > 0, "k must be positive");
    assert_eq!(priors.dim(), d, "priors dimensionality mismatch");
    assert_eq!(query.len(), d, "query arity mismatch");
    let start = Instant::now();

    let mut lattice = Lattice::new(d);
    let tsf = TsfComputer::new(d);
    let mut evaluated_outliers: Vec<ScoredSubspace> = Vec::new();
    let mut level_eval_stats = vec![(0u64, 0u64); d + 1];
    let mut rounds = 0u32;
    let mut wasted_evals = 0u64;

    // One OD evaluator for the whole search: it owns the lazy
    // per-query distance cache and the amortisation cost model
    // (engines without a cache just answer queries directly; sharded
    // engines fan each batch over their shards). See
    // `hos_index::evaluator` for the seam.
    let mut evaluator = engine.evaluator(query, k, exclude);

    while !lattice.is_complete() {
        // Pick the open level with the highest TSF; ties break toward
        // the lower level (cheaper OD evaluations, matching the
        // paper's preference for starting low when indifferent).
        let m = (1..=d)
            .filter(|&m| lattice.remaining_at(m) > 0)
            .max_by(|&a, &b| {
                let ta = tsf.tsf(a, priors.up(a), priors.down(a), &lattice);
                let tb = tsf.tsf(b, priors.up(b), priors.down(b), &lattice);
                ta.partial_cmp(&tb)
                    .expect("finite TSF")
                    .then_with(|| b.cmp(&a))
            })
            .expect("lattice not complete implies an open level");

        // Walker-order enumeration: the level batch arrives at the
        // evaluator already in prefix-trie DFS order, so the
        // prefix-stack kernel shares accumulators across consecutive
        // subspaces (and across rounds — the evaluator's stack
        // persists between batches).
        let open = lattice.open_at_level_walk(m);
        debug_assert!(!open.is_empty());
        let ods = evaluator.od_batch(&open, threads);
        for (&s, &od) in open.iter().zip(&ods) {
            // A subspace may have been pruned by an earlier evaluation
            // in this same batch — its OD was computed wastefully but
            // its disposal must not change. `wasted_evals` measures
            // exactly this batch overshoot.
            if lattice.state(s) != SubspaceState::Unevaluated {
                wasted_evals += 1;
                continue;
            }
            lattice.mark_evaluated(s);
            level_eval_stats[m].0 += 1;
            if od >= threshold {
                level_eval_stats[m].1 += 1;
                evaluated_outliers.push(ScoredSubspace {
                    subspace: s,
                    od: Some(od),
                });
                lattice.prune_up(s);
            } else {
                lattice.prune_down(s);
            }
        }
        rounds += 1;
    }

    // Assemble the answer set: directly evaluated outliers plus
    // everything pruned in by Property 2.
    let mut outlying = evaluated_outliers;
    for s in lattice.in_state(SubspaceState::PrunedOutlier) {
        outlying.push(ScoredSubspace {
            subspace: s,
            od: None,
        });
    }
    outlying.sort_by_key(|s| s.subspace.mask());

    // Per-level outlier fractions for the learning phase.
    let mut outlier_count = vec![0u64; d + 1];
    for s in &outlying {
        outlier_count[s.subspace.dim()] += 1;
    }
    let level_outlier_fraction: Vec<f64> = (0..=d)
        .map(|m| {
            if m == 0 {
                0.0
            } else {
                let total = hos_lattice::binomial(d, m);
                outlier_count[m] as f64 / total
            }
        })
        .collect();

    let counters = lattice.counters();
    let stats = SearchStats {
        od_evals: counters.evaluated,
        wasted_evals,
        pruned_outlier: counters.pruned_outlier,
        pruned_non_outlier: counters.pruned_non_outlier,
        nodes_visited: evaluator.node_visits(),
        rounds,
        lattice_size: Subspace::lattice_size(d),
        seconds: start.elapsed().as_secs_f64(),
    };

    SearchOutcome {
        outlying,
        stats,
        level_outlier_fraction,
        level_eval_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_data::{Dataset, Metric};
    use hos_index::LinearScan;

    /// A dataset where point 0 is an extreme outlier along dim 0 only.
    fn axis_outlier_engine() -> LinearScan {
        let mut rows = vec![vec![100.0, 0.5, 0.5]];
        for i in 0..60 {
            rows.push(vec![
                (i % 10) as f64 * 0.01,
                (i % 7) as f64 * 0.01,
                (i % 5) as f64 * 0.01,
            ]);
        }
        LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2)
    }

    fn exhaustive_reference(
        engine: &dyn KnnEngine,
        query: &[f64],
        exclude: Option<PointId>,
        k: usize,
        t: f64,
    ) -> Vec<Subspace> {
        Subspace::all_nonempty(engine.dataset().dim())
            .filter(|&s| engine.od(query, k, s, exclude) >= t)
            .collect()
    }

    #[test]
    fn finds_exactly_the_exhaustive_answer() {
        let e = axis_outlier_engine();
        let q: Vec<f64> = e.dataset().row(0).to_vec();
        let priors = Priors::uniform(3);
        let t = 10.0;
        let out = dynamic_search(&e, &q, Some(0), 4, t, &priors, 1);
        let mut got = out.subspaces();
        got.sort_by_key(|s| s.mask());
        let mut expected = exhaustive_reference(&e, &q, Some(0), 4, t);
        expected.sort_by_key(|s| s.mask());
        assert_eq!(got, expected);
        // Every subspace containing dim 0 must be outlying; none other.
        for s in &got {
            assert!(s.contains_dim(0));
        }
        assert_eq!(got.len(), 4); // {0},{0,1},{0,2},{0,1,2}
    }

    #[test]
    fn inlier_point_has_empty_answer() {
        let e = axis_outlier_engine();
        let q: Vec<f64> = e.dataset().row(5).to_vec();
        let priors = Priors::uniform(3);
        let out = dynamic_search(&e, &q, Some(5), 4, 10.0, &priors, 1);
        assert!(out.outlying.is_empty());
        // The whole lattice must still be disposed of.
        let s = &out.stats;
        assert_eq!(
            s.od_evals + s.pruned_outlier + s.pruned_non_outlier,
            s.lattice_size
        );
    }

    #[test]
    fn accounting_adds_up() {
        let e = axis_outlier_engine();
        let q: Vec<f64> = e.dataset().row(0).to_vec();
        let out = dynamic_search(&e, &q, Some(0), 4, 10.0, &Priors::uniform(3), 1);
        let s = &out.stats;
        assert_eq!(s.lattice_size, 7);
        assert_eq!(
            s.od_evals + s.pruned_outlier + s.pruned_non_outlier,
            s.lattice_size
        );
        assert!(s.rounds >= 1);
        assert!(s.seconds >= 0.0);
        assert!(s.evaluated_fraction() <= 1.0);
    }

    #[test]
    fn pruning_saves_evaluations_for_extreme_points() {
        // For a point outlying in a single dimension, upward pruning
        // from level 1 should spare most of the lattice.
        let e = axis_outlier_engine();
        let q: Vec<f64> = e.dataset().row(0).to_vec();
        let out = dynamic_search(&e, &q, Some(0), 4, 10.0, &Priors::uniform(3), 1);
        assert!(
            out.stats.od_evals < out.stats.lattice_size,
            "no savings at all: {:?}",
            out.stats
        );
        assert!(out.stats.pruned_outlier > 0);
    }

    #[test]
    fn scored_subspaces_report_od_when_evaluated() {
        let e = axis_outlier_engine();
        let q: Vec<f64> = e.dataset().row(0).to_vec();
        let out = dynamic_search(&e, &q, Some(0), 4, 10.0, &Priors::uniform(3), 1);
        // At least one answer member must carry a concrete OD >= T, and
        // every concrete OD must meet the threshold.
        assert!(out.outlying.iter().any(|s| s.od.is_some()));
        for s in &out.outlying {
            if let Some(od) = s.od {
                assert!(od >= 10.0);
            }
        }
        assert!(out.contains(Subspace::from_dims(&[0])));
        assert!(!out.contains(Subspace::from_dims(&[1])));
    }

    #[test]
    fn level_fractions_match_answer_set() {
        let e = axis_outlier_engine();
        let q: Vec<f64> = e.dataset().row(0).to_vec();
        let out = dynamic_search(&e, &q, Some(0), 4, 10.0, &Priors::uniform(3), 1);
        // d=3: levels hold 3, 3, 1 subspaces; the answer set is the 4
        // supersets of {0}: one of 3 at level 1, two of 3 at level 2,
        // one of 1 at level 3.
        let f = &out.level_outlier_fraction;
        assert_eq!(f.len(), 4);
        assert!((f[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((f[2] - 2.0 / 3.0).abs() < 1e-12);
        assert!((f[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wasted_evals_accounting_matches_engine_work() {
        // Every OD the engine computed for the search is either
        // consumed (`od_evals`) or wasted (`wasted_evals`). Derive the
        // total ODs actually computed from the engine's distance-eval
        // counter — each OD over the n-point dataset with
        // self-exclusion touches exactly n-1 points, cached or not —
        // and pin the identity: od_evals + wasted_evals never exceeds
        // the batch totals, and accounts for every one of them.
        for threads in [1, 4] {
            let e = axis_outlier_engine();
            let n = e.dataset().len() as u64;
            let q: Vec<f64> = e.dataset().row(0).to_vec();
            let before = e.distance_evals();
            let out = dynamic_search(&e, &q, Some(0), 4, 10.0, &Priors::uniform(3), threads);
            let batch_total = (e.distance_evals() - before) / (n - 1);
            let s = &out.stats;
            assert!(
                s.od_evals + s.wasted_evals <= batch_total,
                "threads={threads}: {} consumed + {} wasted > {batch_total} computed",
                s.od_evals,
                s.wasted_evals
            );
            assert_eq!(
                s.od_evals + s.wasted_evals,
                batch_total,
                "threads={threads}"
            );
            // Same-level batching cannot overshoot: the Property 1/2
            // closures only dispose of *strictly* smaller/larger
            // subspaces, which live on other levels.
            assert_eq!(s.wasted_evals, 0, "threads={threads}");
        }
    }

    #[test]
    fn nodes_visited_bounded_by_direct_recombine_cost() {
        // The prefix-stack cost claim at search level: the kernel's
        // column folds never exceed what the direct per-subspace
        // recombine would pay (Σ|s| over every batched subspace), and
        // a search that reaches the cached phase reports a non-zero
        // counter.
        let mut rows: Vec<Vec<f64>> = (0..80)
            .map(|i| {
                vec![
                    (i % 9) as f64 * 0.3,
                    (i % 7) as f64 * 0.3,
                    (i % 5) as f64 * 0.3,
                    (i % 4) as f64 * 0.3,
                    (i % 3) as f64 * 0.3,
                ]
            })
            .collect();
        rows.push(vec![50.0, 0.3, 0.3, 0.3, 0.3]);
        let e = LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2);
        let q: Vec<f64> = e.dataset().row(80).to_vec();
        for threads in [1, 3] {
            let out = dynamic_search(&e, &q, Some(80), 4, 1e-6, &Priors::uniform(5), threads);
            // Threshold ~0: everything is outlying, level 1 prunes the
            // rest in — but the first TSF rounds still batch enough
            // dimensionality to build the cache in realistic searches.
            let s = &out.stats;
            assert!(
                s.nodes_visited <= s.lattice_size * 5,
                "threads={threads}: {} folds for a d=5 lattice",
                s.nodes_visited
            );
        }
        // A genuinely deep search (high threshold, everything below T:
        // downward pruning from the top level) that walks many
        // subspaces through the cached phase reports its folds, and
        // they are bounded by the evaluated dimensionality.
        let inlier: Vec<f64> = e.dataset().row(5).to_vec();
        let out = dynamic_search(&e, &inlier, Some(5), 4, 1e9, &Priors::uniform(5), 1);
        let s = &out.stats;
        assert!(s.nodes_visited <= s.od_evals * 5 + 2 * 5);
    }

    #[test]
    fn threshold_monotone_in_answer_size() {
        let e = axis_outlier_engine();
        let q: Vec<f64> = e.dataset().row(0).to_vec();
        let priors = Priors::uniform(3);
        let lo = dynamic_search(&e, &q, Some(0), 4, 0.5, &priors, 1);
        let hi = dynamic_search(&e, &q, Some(0), 4, 50.0, &priors, 1);
        assert!(lo.outlying.len() >= hi.outlying.len());
        // Everything outlying at the high threshold is outlying at the low one.
        for s in &hi.outlying {
            assert!(lo.contains(s.subspace));
        }
    }

    #[test]
    fn parallel_threads_agree_with_serial() {
        let e = axis_outlier_engine();
        let q: Vec<f64> = e.dataset().row(0).to_vec();
        let priors = Priors::uniform(3);
        let a = dynamic_search(&e, &q, Some(0), 4, 10.0, &priors, 1);
        let b = dynamic_search(&e, &q, Some(0), 4, 10.0, &priors, 4);
        assert_eq!(a.subspaces(), b.subspaces());
    }

    #[test]
    fn single_dimension_dataset() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![0.1], vec![0.2], vec![50.0]]).unwrap();
        let e = LinearScan::new(ds, Metric::L2);
        let out = dynamic_search(&e, &[50.0], Some(3), 2, 10.0, &Priors::uniform(1), 1);
        assert_eq!(out.subspaces(), vec![Subspace::from_dims(&[0])]);
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let e = axis_outlier_engine();
        let q = vec![0.0; 3];
        let _ = dynamic_search(&e, &q, None, 0, 1.0, &Priors::uniform(3), 1);
    }

    #[test]
    #[should_panic]
    fn wrong_priors_dim_panics() {
        let e = axis_outlier_engine();
        let q = vec![0.0; 3];
        let _ = dynamic_search(&e, &q, None, 3, 1.0, &Priors::uniform(5), 1);
    }
}
