//! Error type for the HOS-Miner core.

use hos_data::DataError;
use hos_index::IndexError;
use std::fmt;

/// Errors produced by configuration, fitting, querying or streaming
/// mutation.
#[derive(Debug)]
pub enum HosError {
    /// A data-layer failure (loading, shapes, non-finite values).
    Data(DataError),
    /// An engine-layer failure: checked queries and incremental
    /// mutation (dead points, too few live candidates for `k`,
    /// unsupported mutation).
    Index(IndexError),
    /// A configuration parameter was invalid.
    Config(String),
    /// A query was malformed (e.g. wrong arity for the fitted dataset).
    Query(String),
}

impl HosError {
    /// Stable machine-readable tag for error envelopes (the serve
    /// layer's JSON errors carry this as `error.kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            HosError::Data(_) => "data",
            HosError::Index(_) => "index",
            HosError::Config(_) => "config",
            HosError::Query(_) => "query",
        }
    }
}

impl fmt::Display for HosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HosError::Data(e) => write!(f, "data error: {e}"),
            HosError::Index(e) => write!(f, "index error: {e}"),
            HosError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            HosError::Query(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for HosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HosError::Data(e) => Some(e),
            HosError::Index(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for HosError {
    fn from(e: DataError) -> Self {
        HosError::Data(e)
    }
}

impl From<IndexError> for HosError {
    fn from(e: IndexError) -> Self {
        HosError::Index(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = HosError::Config("k must be positive".into());
        assert!(e.to_string().contains("k must be positive"));
        assert!(e.source().is_none());

        let d: HosError = DataError::Empty.into();
        assert!(d.to_string().contains("data error"));
        assert!(d.source().is_some());

        let q = HosError::Query("arity".into());
        assert!(q.to_string().contains("invalid query"));
    }
}
