//! The `HosMiner` facade: the full system of the paper's Figure 2.
//!
//! `fit` wires the four modules together — index the data (X-tree or
//! linear scan), resolve the threshold, run the sampling-based
//! learning — and `query_*` runs the dynamic subspace search followed
//! by the refinement filter.

use crate::batch::{batch_search, BatchQuery};
use crate::error::HosError;
use crate::filter::minimal_subspaces;
use crate::learning::LearnedModel;
use crate::od::ThresholdPolicy;
use crate::search::{dynamic_search, ScoredSubspace, SearchOutcome, SearchStats};
use crate::Result;
use hos_data::{Dataset, Metric, PointId, Subspace};
use hos_index::{build_engine_sharded, Engine, IndexError, KnnEngine};

/// Configuration of a HOS-Miner instance.
#[derive(Clone, Copy, Debug)]
pub struct HosMinerConfig {
    /// Neighbour count `k` of the OD measure.
    pub k: usize,
    /// How the global threshold `T` is chosen.
    pub threshold: ThresholdPolicy,
    /// Distance metric (must be projection monotone — all provided
    /// metrics are).
    pub metric: Metric,
    /// k-NN engine backing the OD evaluations.
    pub engine: Engine,
    /// Sample size `S` of the learning process (0 = skip learning and
    /// use the uniform priors).
    pub sample_size: usize,
    /// Laplace smoothing pseudo-count applied to the learned priors
    /// (see `learning` module docs). `0` = the paper's literal
    /// average; default `1`.
    pub prior_smoothing: f64,
    /// Worker threads for per-level OD batches.
    pub threads: usize,
    /// Data shards for intra-query parallelism: `> 1` splits the
    /// dataset into that many contiguous row partitions behind a
    /// `ShardedEngine` whose per-shard top-k merge reproduces the
    /// unsharded engine's ODs bit for bit (see
    /// `hos_index::sharded`). `1` (the default) keeps the plain
    /// engine.
    pub shards: usize,
    /// Candidate-pool width (`ef_search`) applied to width-tunable
    /// engines (`Engine::Hnsw`) after the build; `None` keeps the
    /// engine's default. Exact engines ignore it. Like `threads`, this
    /// is a machine-tuning knob and is never persisted with a model.
    pub ef: Option<usize>,
    /// Target recall@k for width-tunable engines: when set, the fit
    /// calibrates `ef` upward (doubling ladder, measured against the
    /// engine's own exhaustive mode) until a deterministic sample of
    /// member queries reaches this mean recall. Applied after `ef`,
    /// so `ef` becomes the starting point rather than the final word.
    pub recall_target: Option<f64>,
    /// Seed for sampling (threshold + learning).
    pub seed: u64,
}

impl Default for HosMinerConfig {
    fn default() -> Self {
        HosMinerConfig {
            k: 5,
            threshold: ThresholdPolicy::default(),
            metric: Metric::L2,
            engine: Engine::Linear,
            sample_size: 20,
            prior_smoothing: 1.0,
            threads: 1,
            shards: 1,
            ef: None,
            recall_target: None,
            seed: 0,
        }
    }
}

/// Calibration sample size for [`HosMinerConfig::recall_target`] —
/// large enough for a stable mean recall, small enough that fitting
/// stays cheap (each probe is `sample` queries per ladder step).
const RECALL_CALIBRATION_SAMPLE: usize = 16;

/// Applies the config's search-width knobs to a freshly built engine:
/// `ef` first (the starting width), then recall calibration when a
/// target is set. No-ops on exact engines, whose recall is 1 at any
/// width.
fn apply_search_width(engine: &dyn KnnEngine, config: &HosMinerConfig) -> Result<()> {
    if let Some(ef) = config.ef {
        if ef == 0 {
            return Err(HosError::Config("ef must be positive".into()));
        }
        engine.set_search_width(ef);
    }
    if let Some(target) = config.recall_target {
        if !(target.is_finite() && target > 0.0 && target <= 1.0) {
            return Err(HosError::Config(format!(
                "recall target {target} must be in (0, 1]"
            )));
        }
        hos_index::calibrate_search_width(
            engine,
            config.k,
            target,
            RECALL_CALIBRATION_SAMPLE,
            config.seed.wrapping_add(2),
        );
    }
    Ok(())
}

/// One query in a mixed service batch: either a dataset member
/// (excluded from its own neighbourhoods) or an arbitrary point.
///
/// The serving layer coalesces concurrent requests of both shapes
/// into one admission window and drives them through
/// [`HosMiner::query_each`]; this enum is that seam's unit of work.
#[derive(Clone, Debug, PartialEq)]
pub enum QuerySpec {
    /// A dataset member by id (self-excluded, like
    /// [`HosMiner::query_id`]).
    Member(PointId),
    /// An arbitrary query point (like [`HosMiner::query_point`]).
    Point(Vec<f64>),
}

/// Result of one query: the answer set, its minimal frontier, and the
/// cost accounting.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Every outlying subspace found (evaluated or pruned-in).
    pub outlying: Vec<ScoredSubspace>,
    /// The refined result the system reports to the user (paper §3.4):
    /// minimal outlying subspaces only.
    pub minimal: Vec<Subspace>,
    /// Search cost accounting.
    pub stats: SearchStats,
}

impl QueryOutcome {
    fn from_search(out: SearchOutcome) -> Self {
        let subspaces: Vec<Subspace> = out.subspaces();
        QueryOutcome {
            minimal: minimal_subspaces(&subspaces),
            outlying: out.outlying,
            stats: out.stats,
        }
    }

    /// Whether the point is an outlier in at least one subspace.
    pub fn is_outlier(&self) -> bool {
        !self.outlying.is_empty()
    }
}

/// A fitted HOS-Miner ready to answer outlying-subspace queries.
///
/// ```
/// use hos_core::{HosMiner, HosMinerConfig, ThresholdPolicy};
/// use hos_data::{Dataset, Subspace};
///
/// // A 2-d cluster plus one point displaced along the first axis only.
/// let mut rows: Vec<Vec<f64>> =
///     (0..50).map(|i| vec![(i % 7) as f64 * 0.1, (i % 5) as f64 * 0.1]).collect();
/// rows.push(vec![50.0, 0.2]);
/// let data = Dataset::from_rows(&rows).unwrap();
///
/// let miner = HosMiner::fit(data, HosMinerConfig {
///     k: 3,
///     threshold: ThresholdPolicy::Fixed(10.0),
///     sample_size: 0, // uniform priors; >0 runs the learning phase
///     ..HosMinerConfig::default()
/// }).unwrap();
///
/// let out = miner.query_id(50).unwrap();
/// assert_eq!(out.minimal, vec![Subspace::from_dims(&[0])]);
/// assert!(miner.query_id(0).unwrap().minimal.is_empty());
/// ```
pub struct HosMiner {
    engine: Box<dyn KnnEngine>,
    config: HosMinerConfig,
    model: LearnedModel,
}

impl HosMiner {
    /// Builds the index, resolves the threshold and runs the learning
    /// process over `dataset`.
    pub fn fit(dataset: Dataset, config: HosMinerConfig) -> Result<Self> {
        if config.k == 0 {
            return Err(HosError::Config("k must be positive".into()));
        }
        if dataset.is_empty() {
            return Err(HosError::Config("dataset must be non-empty".into()));
        }
        if dataset.len() <= config.k {
            return Err(HosError::Config(format!(
                "dataset has {} points; need more than k = {} for self-excluded k-NN",
                dataset.len(),
                config.k
            )));
        }
        if !config.metric.is_projection_monotone() {
            return Err(HosError::Config(format!(
                "metric {:?} is not projection monotone; pruning would be unsound",
                config.metric
            )));
        }
        let d = dataset.dim();
        if d > hos_lattice::lattice::MAX_LATTICE_DIM {
            return Err(HosError::Config(format!(
                "dimensionality {d} exceeds the dynamic-search limit {}",
                hos_lattice::lattice::MAX_LATTICE_DIM
            )));
        }
        if config.shards == 0 {
            return Err(HosError::Config("shards must be positive".into()));
        }
        let engine = build_engine_sharded(
            config.engine,
            dataset,
            config.metric,
            config.shards,
            config.threads,
        );
        apply_search_width(engine.as_ref(), &config)?;
        let threshold = config
            .threshold
            .resolve(engine.as_ref(), config.k, config.seed)?;
        let model = crate::learning::learn_with_smoothing(
            engine.as_ref(),
            config.k,
            threshold,
            config.sample_size,
            config.seed.wrapping_add(1),
            config.threads,
            config.prior_smoothing,
        )?;
        Ok(HosMiner {
            engine,
            config,
            model,
        })
    }

    /// Assembles a miner from pre-fitted parts — used by model
    /// persistence ([`crate::model_io::ModelFile::into_miner`]) to
    /// skip threshold resolution and learning. Validates the same
    /// invariants as [`HosMiner::fit`].
    pub fn from_parts(
        dataset: Dataset,
        config: HosMinerConfig,
        model: LearnedModel,
    ) -> Result<Self> {
        if config.k == 0 {
            return Err(HosError::Config("k must be positive".into()));
        }
        if dataset.is_empty() || dataset.len() <= config.k {
            return Err(HosError::Config(format!(
                "dataset has {} points; need more than k = {}",
                dataset.len(),
                config.k
            )));
        }
        if model.priors.dim() != dataset.dim() {
            return Err(HosError::Config(format!(
                "priors cover {} dimensions, dataset has {}",
                model.priors.dim(),
                dataset.dim()
            )));
        }
        if !(model.threshold.is_finite() && model.threshold > 0.0) {
            return Err(HosError::Config(format!(
                "threshold {} must be positive and finite",
                model.threshold
            )));
        }
        if config.shards == 0 {
            return Err(HosError::Config("shards must be positive".into()));
        }
        let engine = build_engine_sharded(
            config.engine,
            dataset,
            config.metric,
            config.shards,
            config.threads,
        );
        apply_search_width(engine.as_ref(), &config)?;
        Ok(HosMiner {
            engine,
            config,
            model,
        })
    }

    /// Sets the worker-thread count for subsequent queries (per-level
    /// OD batches, the batch front-ends, and the engine's own
    /// intra-query fan-out when it has one — the sharded engine
    /// does). Used by callers that assemble a miner from a saved
    /// model, where the persisted file carries no machine-specific
    /// parallelism setting.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
        self.engine.set_threads(self.config.threads);
    }

    /// The resolved global threshold `T`.
    pub fn threshold(&self) -> f64 {
        self.model.threshold
    }

    /// The learned model (priors + learning cost).
    pub fn model(&self) -> &LearnedModel {
        &self.model
    }

    /// The fitted configuration.
    pub fn config(&self) -> &HosMinerConfig {
        &self.config
    }

    /// The underlying k-NN engine.
    pub fn engine(&self) -> &dyn KnnEngine {
        self.engine.as_ref()
    }

    /// Consumes the miner and returns its dataset without copying —
    /// the move-out counterpart of [`HosMiner::engine`], used by
    /// streaming compaction and snapshotting to avoid a second full
    /// copy of the window at peak-memory moments.
    pub fn into_dataset(self) -> Dataset {
        self.engine.into_dataset()
    }

    /// Number of live points currently backing queries (inserted and
    /// not retired).
    pub fn live_len(&self) -> usize {
        self.engine.dataset().live_len()
    }

    /// Inserts one point into the fitted system without a rebuild: the
    /// engine index absorbs the row incrementally and the new point
    /// immediately participates in every subsequent neighbourhood.
    ///
    /// The learned model (threshold `T`, priors) is **not** updated —
    /// per-query state (distance caches) is built fresh per search, so
    /// there is nothing else to invalidate. Call
    /// [`HosMiner::reestimate_threshold`] to re-derive `T` over the
    /// current live window.
    ///
    /// Returns the new point's id (stable across later mutations).
    pub fn insert_point(&mut self, row: &[f64]) -> Result<PointId> {
        let inc = self
            .engine
            .as_incremental()
            .ok_or(HosError::Index(IndexError::Immutable("configured engine")))?;
        Ok(inc.insert(row)?)
    }

    /// Retires (removes) dataset member `id`: the point stops
    /// participating in any neighbourhood, and querying it yields a
    /// typed error. Its id stays allocated (tombstone), so ids held by
    /// callers never shift.
    pub fn retire_point(&mut self, id: PointId) -> Result<()> {
        let inc = self
            .engine
            .as_incremental()
            .ok_or(HosError::Index(IndexError::Immutable("configured engine")))?;
        Ok(inc.remove(id)?)
    }

    /// Re-resolves the configured [`ThresholdPolicy`] over the current
    /// live points and installs the result as the model threshold —
    /// the sliding-window re-estimation hook for streaming workloads
    /// (a `Fixed` policy re-resolves to the same value; a quantile
    /// policy re-samples the live window).
    pub fn reestimate_threshold(&mut self) -> Result<f64> {
        self.ensure_enough_live(true)?;
        let t =
            self.config
                .threshold
                .resolve(self.engine.as_ref(), self.config.k, self.config.seed)?;
        self.model.threshold = t;
        Ok(t)
    }

    /// Validates that enough live candidates exist for a `k`-NN query
    /// (`exclude_member`: the query is a dataset member and excludes
    /// itself). Reachable once removals shrink the window below `k`.
    fn ensure_enough_live(&self, exclude_member: bool) -> Result<()> {
        let available = self
            .engine
            .dataset()
            .live_len()
            .saturating_sub(usize::from(exclude_member));
        if available < self.config.k {
            return Err(HosError::Index(IndexError::InsufficientPoints {
                available,
                k: self.config.k,
            }));
        }
        Ok(())
    }

    /// Validates a member-query id: in bounds and live.
    fn ensure_member(&self, id: PointId) -> Result<()> {
        let ds = self.engine.dataset();
        if id >= ds.len() {
            return Err(HosError::Query(format!(
                "point id {id} out of bounds for dataset of {} points",
                ds.len()
            )));
        }
        if !ds.is_live(id) {
            return Err(HosError::Index(IndexError::DeadPoint(id)));
        }
        Ok(())
    }

    /// Finds the outlying subspaces of an arbitrary query point.
    pub fn query_point(&self, query: &[f64]) -> Result<QueryOutcome> {
        let d = self.engine.dataset().dim();
        if query.len() != d {
            return Err(HosError::Query(format!(
                "query has {} coordinates, dataset has {d} dimensions",
                query.len()
            )));
        }
        if query.iter().any(|v| !v.is_finite()) {
            return Err(HosError::Query("query contains non-finite values".into()));
        }
        self.ensure_enough_live(false)?;
        Ok(QueryOutcome::from_search(dynamic_search(
            self.engine.as_ref(),
            query,
            None,
            self.config.k,
            self.model.threshold,
            &self.model.priors,
            self.config.threads,
        )))
    }

    /// Finds the outlying subspaces of dataset member `id` (excluded
    /// from its own neighbourhoods).
    pub fn query_id(&self, id: PointId) -> Result<QueryOutcome> {
        self.ensure_member(id)?;
        self.ensure_enough_live(true)?;
        let row: Vec<f64> = self.engine.dataset().row(id).to_vec();
        Ok(QueryOutcome::from_search(dynamic_search(
            self.engine.as_ref(),
            &row,
            Some(id),
            self.config.k,
            self.model.threshold,
            &self.model.priors,
            self.config.threads,
        )))
    }

    /// Finds the outlying subspaces of many dataset members at once,
    /// fanned out across `config.threads` workers. Results are in
    /// input order and identical to calling [`HosMiner::query_id`]
    /// per id (up to wall-clock stats); all ids are validated before
    /// any search runs.
    pub fn query_ids(&self, ids: &[PointId]) -> Result<Vec<QueryOutcome>> {
        for &id in ids {
            self.ensure_member(id)?;
        }
        if !ids.is_empty() {
            self.ensure_enough_live(true)?;
        }
        let ds = self.engine.dataset();
        let queries: Vec<BatchQuery<'_>> = ids
            .iter()
            .map(|&id| BatchQuery {
                point: ds.row(id),
                exclude: Some(id),
            })
            .collect();
        Ok(self.run_batch(&queries))
    }

    /// Finds the outlying subspaces of many arbitrary query points at
    /// once, fanned out across `config.threads` workers. Results are
    /// in input order; all points are validated before any search
    /// runs.
    pub fn query_points(&self, points: &[Vec<f64>]) -> Result<Vec<QueryOutcome>> {
        let d = self.engine.dataset().dim();
        for (i, p) in points.iter().enumerate() {
            if p.len() != d {
                return Err(HosError::Query(format!(
                    "query {i} has {} coordinates, dataset has {d} dimensions",
                    p.len()
                )));
            }
            if p.iter().any(|v| !v.is_finite()) {
                return Err(HosError::Query(format!(
                    "query {i} contains non-finite values"
                )));
            }
        }
        if !points.is_empty() {
            self.ensure_enough_live(false)?;
        }
        let queries: Vec<BatchQuery<'_>> = points
            .iter()
            .map(|p| BatchQuery {
                point: p,
                exclude: None,
            })
            .collect();
        Ok(self.run_batch(&queries))
    }

    /// Evaluates a **mixed** batch of member/point queries with
    /// per-item error reporting: every spec is validated
    /// independently, the valid ones run through one
    /// [`batch_search`] fan-out (across `config.threads` pooled
    /// workers), and each slot gets either its outcome or the same
    /// typed error the corresponding [`HosMiner::query_id`] /
    /// [`HosMiner::query_point`] call would return.
    ///
    /// This is the serving seam: an admission batcher coalesces
    /// concurrent requests into one `query_each` call, and because
    /// `dynamic_search` is deterministic and the fan-out preserves
    /// input order, every outcome is **bit-identical** to running
    /// that query alone — one slow or invalid request can neither
    /// change nor fail its batch-mates.
    pub fn query_each(&self, specs: &[QuerySpec]) -> Vec<Result<QueryOutcome>> {
        let ds = self.engine.dataset();
        let d = ds.dim();
        let validated: Vec<Result<()>> = specs
            .iter()
            .map(|spec| match spec {
                QuerySpec::Member(id) => {
                    self.ensure_member(*id)?;
                    self.ensure_enough_live(true)
                }
                QuerySpec::Point(p) => {
                    if p.len() != d {
                        return Err(HosError::Query(format!(
                            "query has {} coordinates, dataset has {d} dimensions",
                            p.len()
                        )));
                    }
                    if p.iter().any(|v| !v.is_finite()) {
                        return Err(HosError::Query("query contains non-finite values".into()));
                    }
                    self.ensure_enough_live(false)
                }
            })
            .collect();
        let queries: Vec<BatchQuery<'_>> = specs
            .iter()
            .zip(&validated)
            .filter(|(_, v)| v.is_ok())
            .map(|(spec, _)| match spec {
                QuerySpec::Member(id) => BatchQuery {
                    point: ds.row(*id),
                    exclude: Some(*id),
                },
                QuerySpec::Point(p) => BatchQuery {
                    point: p,
                    exclude: None,
                },
            })
            .collect();
        let mut outcomes = self.run_batch(&queries).into_iter();
        validated
            .into_iter()
            .map(|v| v.map(|()| outcomes.next().expect("one outcome per valid spec")))
            .collect()
    }

    fn run_batch(&self, queries: &[BatchQuery<'_>]) -> Vec<QueryOutcome> {
        batch_search(
            self.engine.as_ref(),
            queries,
            self.config.k,
            self.model.threshold,
            &self.model.priors,
            self.config.threads,
        )
        .into_iter()
        .map(QueryOutcome::from_search)
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_data::synth::planted::{generate, PlantedSpec};

    fn planted() -> (Dataset, Vec<(PointId, Subspace)>) {
        let spec = PlantedSpec {
            n_background: 300,
            d: 5,
            n_clusters: 2,
            cluster_sigma: 1.0,
            extent: 60.0,
            targets: vec![Subspace::from_dims(&[0, 1]), Subspace::from_dims(&[3])],
            shift_sigmas: 12.0,
            seed: 18,
        };
        let w = generate(&spec).unwrap();
        let truth = w.outliers.iter().map(|o| (o.id, o.subspace)).collect();
        (w.dataset, truth)
    }

    fn fitted(engine: Engine) -> (HosMiner, Vec<(PointId, Subspace)>) {
        let (ds, truth) = planted();
        let config = HosMinerConfig {
            k: 5,
            threshold: ThresholdPolicy::FullSpaceQuantile {
                q: 0.95,
                sample: 150,
            },
            engine,
            sample_size: 10,
            ..HosMinerConfig::default()
        };
        (HosMiner::fit(ds, config).unwrap(), truth)
    }

    #[test]
    fn detects_planted_outlying_subspaces() {
        let (miner, truth) = fitted(Engine::Linear);
        for (id, target) in truth {
            let out = miner.query_id(id).unwrap();
            assert!(out.is_outlier(), "planted outlier {id} not detected at all");
            // The target subspace (or a subset of it) must be in the
            // minimal frontier: the deviation was injected exactly there.
            assert!(
                out.minimal.iter().any(|m| m.is_subset_of(target)),
                "target {target} not covered by minimal set {:?}",
                out.minimal
            );
        }
    }

    #[test]
    fn background_points_mostly_clean() {
        let (miner, _) = fitted(Engine::Linear);
        let clean = (0..40)
            .filter(|&id| !miner.query_id(id).unwrap().is_outlier())
            .count();
        assert!(clean >= 35, "only {clean}/40 background points clean");
    }

    #[test]
    fn sharded_miner_bit_identical_to_unsharded() {
        // The whole pipeline — threshold resolution, learning, every
        // query — must be unchanged by sharding: the sharded engine's
        // per-shard top-k merge reproduces unsharded ODs bit for bit,
        // and everything downstream is deterministic.
        let (ds, truth) = planted();
        let base = HosMinerConfig {
            k: 5,
            threshold: ThresholdPolicy::FullSpaceQuantile {
                q: 0.95,
                sample: 150,
            },
            sample_size: 10,
            ..HosMinerConfig::default()
        };
        let unsharded = HosMiner::fit(ds.clone(), base).unwrap();
        for shards in [2, 4] {
            let sharded = HosMiner::fit(
                ds.clone(),
                HosMinerConfig {
                    shards,
                    threads: 2,
                    ..base
                },
            )
            .unwrap();
            assert_eq!(
                sharded.threshold(),
                unsharded.threshold(),
                "shards={shards}"
            );
            assert_eq!(
                sharded.model().priors,
                unsharded.model().priors,
                "shards={shards}"
            );
            for (id, _) in &truth {
                let a = unsharded.query_id(*id).unwrap();
                let b = sharded.query_id(*id).unwrap();
                assert_eq!(a.outlying, b.outlying, "shards={shards} point {id}");
                assert_eq!(a.minimal, b.minimal, "shards={shards} point {id}");
                assert_eq!(
                    a.stats.od_evals, b.stats.od_evals,
                    "shards={shards} point {id}"
                );
            }
        }
    }

    #[test]
    fn xtree_engine_agrees_with_linear() {
        let (lin, truth) = fitted(Engine::Linear);
        let (xt, _) = fitted(Engine::XTree);
        for (id, _) in truth {
            let a = lin.query_id(id).unwrap();
            let b = xt.query_id(id).unwrap();
            assert_eq!(a.minimal, b.minimal, "engines disagree on point {id}");
        }
    }

    #[test]
    fn minimal_is_antichain_and_covers_answer() {
        let (miner, truth) = fitted(Engine::Linear);
        let out = miner.query_id(truth[0].0).unwrap();
        for a in &out.minimal {
            for b in &out.minimal {
                if a != b {
                    assert!(!a.is_subset_of(*b));
                }
            }
        }
        for s in &out.outlying {
            assert!(
                crate::filter::covered_by(s.subspace, &out.minimal),
                "answer member {} not covered",
                s.subspace
            );
        }
    }

    #[test]
    fn query_point_external() {
        let (miner, _) = fitted(Engine::Linear);
        // A point absurdly far away in every dimension is outlying
        // everywhere; its minimal set is the single dimensions.
        let far = vec![1e4; 5];
        let out = miner.query_point(&far).unwrap();
        assert!(out.is_outlier());
        assert_eq!(out.minimal.len(), 5);
        assert!(out.minimal.iter().all(|s| s.dim() == 1));
    }

    #[test]
    fn config_validation() {
        let (ds, _) = planted();
        let bad_k = HosMinerConfig {
            k: 0,
            ..HosMinerConfig::default()
        };
        assert!(HosMiner::fit(ds.clone(), bad_k).is_err());
        assert!(HosMiner::fit(Dataset::empty(), HosMinerConfig::default()).is_err());
        let tiny = Dataset::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let cfg = HosMinerConfig {
            k: 5,
            ..HosMinerConfig::default()
        };
        assert!(HosMiner::fit(tiny, cfg).is_err());
        let (ds2, _) = planted();
        let zero_shards = HosMinerConfig {
            shards: 0,
            ..HosMinerConfig::default()
        };
        assert!(HosMiner::fit(ds2, zero_shards).is_err());
    }

    #[test]
    fn query_validation() {
        let (miner, _) = fitted(Engine::Linear);
        assert!(miner.query_point(&[1.0]).is_err());
        assert!(miner.query_point(&[f64::NAN; 5]).is_err());
        assert!(miner.query_id(10_000).is_err());
    }

    #[test]
    fn query_ids_matches_individual_queries() {
        let (miner, truth) = fitted(Engine::Linear);
        let ids: Vec<PointId> = truth.iter().map(|(id, _)| *id).chain(0..6).collect();
        let batch = miner.query_ids(&ids).unwrap();
        assert_eq!(batch.len(), ids.len());
        for (&id, got) in ids.iter().zip(&batch) {
            let solo = miner.query_id(id).unwrap();
            assert_eq!(got.outlying, solo.outlying, "point {id}");
            assert_eq!(got.minimal, solo.minimal, "point {id}");
            assert_eq!(got.stats.od_evals, solo.stats.od_evals, "point {id}");
        }
        assert!(miner.query_ids(&[0, 10_000]).is_err());
        assert!(miner.query_ids(&[]).unwrap().is_empty());
    }

    #[test]
    fn query_points_matches_individual_queries() {
        let (miner, _) = fitted(Engine::Linear);
        let points = vec![vec![1e4; 5], vec![0.0; 5]];
        let batch = miner.query_points(&points).unwrap();
        for (p, got) in points.iter().zip(&batch) {
            let solo = miner.query_point(p).unwrap();
            assert_eq!(got.outlying, solo.outlying);
            assert_eq!(got.minimal, solo.minimal);
        }
        // Validation happens before any search.
        assert!(miner.query_points(&[vec![0.0; 5], vec![1.0]]).is_err());
        assert!(miner.query_points(&[vec![f64::NAN; 5]]).is_err());
    }

    #[test]
    fn query_each_matches_individual_queries_and_isolates_errors() {
        let (miner, truth) = fitted(Engine::Linear);
        let specs = vec![
            QuerySpec::Member(truth[0].0),
            QuerySpec::Point(vec![1e4; 5]),
            QuerySpec::Member(10_000),           // dead/unknown id
            QuerySpec::Point(vec![1.0]),         // wrong arity
            QuerySpec::Point(vec![f64::NAN; 5]), // non-finite
            QuerySpec::Member(0),
        ];
        let results = miner.query_each(&specs);
        assert_eq!(results.len(), specs.len());

        // Valid entries are bit-identical to the per-call paths.
        let solo_member = miner.query_id(truth[0].0).unwrap();
        let got = results[0].as_ref().unwrap();
        assert_eq!(got.outlying, solo_member.outlying);
        assert_eq!(got.minimal, solo_member.minimal);
        assert_eq!(got.stats.od_evals, solo_member.stats.od_evals);

        let solo_point = miner.query_point(&[1e4; 5]).unwrap();
        let got = results[1].as_ref().unwrap();
        assert_eq!(got.outlying, solo_point.outlying);
        assert_eq!(got.minimal, solo_point.minimal);

        let solo_bg = miner.query_id(0).unwrap();
        let got = results[5].as_ref().unwrap();
        assert_eq!(got.outlying, solo_bg.outlying);
        assert_eq!(got.minimal, solo_bg.minimal);

        // Invalid entries fail individually with the same message the
        // per-call path produces, without poisoning their neighbours.
        for (idx, solo) in [
            (2usize, miner.query_id(10_000).unwrap_err()),
            (3, miner.query_point(&[1.0]).unwrap_err()),
            (4, miner.query_point(&[f64::NAN; 5]).unwrap_err()),
        ] {
            let got = results[idx].as_ref().unwrap_err();
            assert_eq!(got.to_string(), solo.to_string(), "spec {idx}");
            assert_eq!(got.kind(), solo.kind(), "spec {idx}");
        }

        assert!(miner.query_each(&[]).is_empty());
    }

    #[test]
    fn set_threads_overrides_config() {
        let (mut miner, truth) = fitted(Engine::Linear);
        let baseline = miner.query_id(truth[0].0).unwrap();
        miner.set_threads(4);
        assert_eq!(miner.config().threads, 4);
        // Parallelism must not change any answer.
        let parallel = miner.query_id(truth[0].0).unwrap();
        assert_eq!(parallel.outlying, baseline.outlying);
        assert_eq!(parallel.minimal, baseline.minimal);
        miner.set_threads(0); // clamped to 1
        assert_eq!(miner.config().threads, 1);
    }

    #[test]
    fn insert_and_retire_maintain_queries_incrementally() {
        for engine in [Engine::Linear, Engine::XTree, Engine::VaFile] {
            let (mut miner, truth) = fitted(engine);
            let n0 = miner.engine().dataset().len();
            assert_eq!(miner.live_len(), n0);
            // Insert a cluster member displaced far along dim 2 only:
            // it is immediately queryable and outlying exactly there.
            let mut displaced: Vec<f64> = miner.engine().dataset().row(10).to_vec();
            displaced[2] += 1e4;
            let new_id = miner.insert_point(&displaced).unwrap();
            assert_eq!(new_id, n0);
            assert_eq!(miner.live_len(), n0 + 1);
            let out = miner.query_id(new_id).unwrap();
            assert!(out.is_outlier(), "{engine}");
            assert_eq!(out.minimal, vec![Subspace::from_dims(&[2])], "{engine}");
            // Retire it: querying the id is now a typed error, and the
            // engine no longer sees it as anyone's neighbour.
            miner.retire_point(new_id).unwrap();
            assert_eq!(miner.live_len(), n0);
            assert!(matches!(
                miner.query_id(new_id),
                Err(HosError::Index(IndexError::DeadPoint(id))) if id == new_id
            ));
            assert!(matches!(
                miner.retire_point(new_id),
                Err(HosError::Index(IndexError::DeadPoint(_)))
            ));
            // A planted outlier is still found after the churn.
            let (id, target) = truth[0];
            let out = miner.query_id(id).unwrap();
            assert!(
                out.minimal.iter().any(|m| m.is_subset_of(target)),
                "{engine}"
            );
            // Mutation validation is typed.
            assert!(matches!(
                miner.insert_point(&[1.0]),
                Err(HosError::Index(IndexError::Shape { .. }))
            ));
            assert!(matches!(
                miner.insert_point(&[f64::NAN; 5]),
                Err(HosError::Index(IndexError::NonFinite))
            ));
        }
    }

    #[test]
    fn queries_error_below_k_live_points() {
        // Shrink a small fitted miner below k: every query path must
        // return the typed insufficiency error instead of panicking or
        // silently understating ODs.
        let mut rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        rows.push(vec![100.0, 100.0]);
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut miner = HosMiner::fit(
            ds,
            HosMinerConfig {
                k: 4,
                threshold: ThresholdPolicy::Fixed(10.0),
                sample_size: 0,
                ..HosMinerConfig::default()
            },
        )
        .unwrap();
        for id in 0..5 {
            miner.retire_point(id).unwrap();
        }
        // 4 live points: a member query has only 3 candidates left.
        assert_eq!(miner.live_len(), 4);
        assert!(matches!(
            miner.query_id(7),
            Err(HosError::Index(IndexError::InsufficientPoints {
                available: 3,
                k: 4
            }))
        ));
        assert!(matches!(
            miner.query_ids(&[7, 8]),
            Err(HosError::Index(IndexError::InsufficientPoints { .. }))
        ));
        // An external point still has 4 candidates — exactly k — so it
        // remains answerable…
        assert!(miner.query_point(&[0.0, 0.0]).is_ok());
        miner.retire_point(5).unwrap();
        // …until the live count itself drops below k.
        assert!(matches!(
            miner.query_point(&[0.0, 0.0]),
            Err(HosError::Index(IndexError::InsufficientPoints {
                available: 3,
                k: 4
            }))
        ));
        assert!(matches!(
            miner.query_points(&[vec![0.0, 0.0]]),
            Err(HosError::Index(IndexError::InsufficientPoints { .. }))
        ));
        assert!(matches!(
            miner.reestimate_threshold(),
            Err(HosError::Index(IndexError::InsufficientPoints { .. }))
        ));
        // Refilling the window restores service.
        for i in 0..3 {
            miner.insert_point(&[i as f64, i as f64]).unwrap();
        }
        assert!(miner.query_point(&[0.0, 0.0]).is_ok());
        assert!(miner.query_id(8).is_ok());
    }

    #[test]
    fn reestimate_threshold_tracks_the_live_window() {
        let (ds, _) = planted();
        let mut miner = HosMiner::fit(
            ds,
            HosMinerConfig {
                k: 5,
                threshold: ThresholdPolicy::FullSpaceQuantile {
                    q: 0.95,
                    sample: 150,
                },
                sample_size: 0,
                ..HosMinerConfig::default()
            },
        )
        .unwrap();
        let t0 = miner.threshold();
        // Same window → same threshold (resolution is seed-pinned).
        assert_eq!(miner.reestimate_threshold().unwrap(), t0);
        // Insert a pile of mutually-distant points (each one's k-NN
        // distances are huge): the full-space OD quantile over the
        // live window must move up.
        for i in 0..60 {
            miner
                .insert_point(&[1e3 * (i + 1) as f64, 0.0, 0.0, 0.0, 0.0])
                .unwrap();
        }
        let t1 = miner.reestimate_threshold().unwrap();
        assert!(t1 > t0, "threshold did not track the window: {t1} <= {t0}");
        assert_eq!(miner.threshold(), t1);
        // A Fixed policy re-resolves to the same value by definition.
        let (ds2, _) = planted();
        let mut fixed = HosMiner::fit(
            ds2,
            HosMinerConfig {
                k: 5,
                threshold: ThresholdPolicy::Fixed(42.0),
                sample_size: 0,
                ..HosMinerConfig::default()
            },
        )
        .unwrap();
        fixed.insert_point(&[9.0; 5]).unwrap();
        assert_eq!(fixed.reestimate_threshold().unwrap(), 42.0);
    }

    #[test]
    fn accessors() {
        let (miner, _) = fitted(Engine::Linear);
        assert!(miner.threshold() > 0.0);
        assert_eq!(miner.config().k, 5);
        assert_eq!(miner.model().samples, 10);
        assert_eq!(miner.engine().dataset().dim(), 5);
    }
}
