//! Frontier search: minimal outlying subspaces without a materialised
//! lattice.
//!
//! The dynamic search (paper §3.3) keeps a state byte for all `2^d - 1`
//! subspaces, which caps it at `d ≤ 26`. This module provides the
//! natural extension for genuinely high-dimensional data: a bottom-up,
//! Apriori-style levelwise search over only the *open frontier*:
//!
//! * level 1 evaluates all `d` single dimensions;
//! * a subspace with `OD ≥ T` is a **minimal outlying subspace** by
//!   construction (every proper subset was evaluated below `T` at an
//!   earlier level) and is never extended;
//! * candidates at level `m + 1` are joins of non-outlying level-`m`
//!   subspaces sharing an `(m-1)`-prefix, kept only if **all** their
//!   `m`-subsets are known non-outlying (the Apriori condition — valid
//!   here because OD is monotone, so a candidate with an outlying
//!   subset cannot be minimal);
//! * an initial full-space OD check settles inlier queries with a
//!   single evaluation (monotonicity: the full space carries the
//!   maximum OD).
//!
//! Exactness caveat, stated plainly: the boundary between outlying and
//! non-outlying regions of the lattice can be exponentially wide, so a
//! complete search cannot be polynomial. `max_dim` bounds the explored
//! dimensionality — the same pragmatic restriction the authors adopt
//! in their follow-up work on outlying-subspace detection — and the
//! result is exactly the set of minimal outlying subspaces of
//! dimensionality `≤ max_dim`. With `max_dim = d` the result equals
//! the filtered answer of the exhaustive/dynamic searches.

use crate::search::SearchStats;
use hos_data::{PointId, Subspace};
use hos_index::KnnEngine;
use std::collections::HashSet;
use std::time::Instant;

/// Outcome of a frontier search.
#[derive(Clone, Debug)]
pub struct FrontierOutcome {
    /// Minimal outlying subspaces of dimensionality `<= max_dim`,
    /// sorted by (dimensionality, mask).
    pub minimal: Vec<Subspace>,
    /// Whether the search is exhaustive: true when `max_dim >= d` or
    /// the frontier emptied before reaching `max_dim` (no deeper
    /// minimal subspace can exist).
    pub complete: bool,
    /// Cost accounting (only `od_evals`, `rounds` and `seconds` are
    /// meaningful; the lattice is never materialised).
    pub stats: SearchStats,
}

/// Runs the frontier search.
///
/// # Panics
/// Panics if `k == 0`, the query arity mismatches, or `max_dim == 0`.
pub fn frontier_search(
    engine: &dyn KnnEngine,
    query: &[f64],
    exclude: Option<PointId>,
    k: usize,
    threshold: f64,
    max_dim: usize,
    threads: usize,
) -> FrontierOutcome {
    let d = engine.dataset().dim();
    assert!(k > 0, "k must be positive");
    assert!(max_dim >= 1, "max_dim must be positive");
    assert_eq!(query.len(), d, "query arity mismatch");
    let start = Instant::now();
    let max_dim = max_dim.min(d);

    let mut evals = 0u64;
    let mut rounds = 0u32;
    let mut minimal: Vec<Subspace> = Vec::new();

    // One OD evaluator for the whole search: lazy per-query cache and
    // amortisation live behind the `hos_index::evaluator` seam, shared
    // with `dynamic_search`.
    let mut evaluator = engine.evaluator(query, k, exclude);

    // Inlier fast path: the full space has the maximum OD.
    let full = Subspace::full(d);
    let full_od = evaluator.od(full);
    evals += 1;
    if full_od < threshold {
        return FrontierOutcome {
            minimal,
            complete: true,
            stats: SearchStats {
                od_evals: evals,
                rounds: 1,
                seconds: start.elapsed().as_secs_f64(),
                lattice_size: Subspace::lattice_size(d),
                ..SearchStats::default()
            },
        };
    }

    // Level 1 (singles ascending — already walker order).
    let mut open: Vec<Subspace> = (0..d).map(Subspace::single).collect();
    let mut level = 1usize;
    let exhausted_frontier;
    loop {
        rounds += 1;
        let ods = evaluator.od_batch(&open, threads);
        evals += open.len() as u64;
        let mut survivors: Vec<Subspace> = Vec::new();
        for (&s, &od) in open.iter().zip(&ods) {
            if od >= threshold {
                minimal.push(s);
            } else {
                survivors.push(s);
            }
        }
        if level >= max_dim {
            // Frontier exhausted only if nothing was left to extend.
            exhausted_frontier = survivors.is_empty();
            break;
        }
        if survivors.is_empty() {
            exhausted_frontier = true;
            break;
        }
        // Apriori join: survivors share masks sorted ascending; two
        // subspaces join if they differ only in their highest bit.
        let survivor_set: HashSet<u64> = survivors.iter().map(|s| s.mask()).collect();
        let mut next: Vec<Subspace> = Vec::new();
        for i in 0..survivors.len() {
            for j in i + 1..survivors.len() {
                let a = survivors[i].mask();
                let b = survivors[j].mask();
                let a_top = 63 - a.leading_zeros();
                let b_top = 63 - b.leading_zeros();
                // Same (m-1)-prefix = equal after clearing the top bit.
                if a & !(1 << a_top) != b & !(1 << b_top) {
                    continue;
                }
                let cand = Subspace::from_mask(a | b);
                // Apriori condition: every m-subset must be a survivor.
                let all_open = cand
                    .dims()
                    .all(|dim| survivor_set.contains(&cand.without_dim(dim).mask()));
                if all_open {
                    next.push(cand);
                }
            }
        }
        if next.is_empty() {
            exhausted_frontier = true;
            break;
        }
        // Walker order (prefix-trie DFS): consecutive candidates share
        // ascending-dim prefixes, so the evaluator's prefix-stack
        // kernel pays O(n) per candidate. Equal masks compare equal
        // under walk_cmp, so dedup still sees duplicates adjacent.
        next.sort_by(|a, b| a.walk_cmp(*b));
        next.dedup();
        open = next;
        level += 1;
    }

    minimal.sort_by_key(|s| (s.dim(), s.mask()));
    FrontierOutcome {
        complete: max_dim >= d || exhausted_frontier,
        minimal,
        stats: SearchStats {
            od_evals: evals,
            nodes_visited: evaluator.node_visits(),
            rounds,
            seconds: start.elapsed().as_secs_f64(),
            lattice_size: Subspace::lattice_size(d),
            ..SearchStats::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::minimal_subspaces;
    use crate::priors::Priors;
    use crate::search::dynamic_search;
    use hos_data::{Dataset, Metric};
    use hos_index::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine(seed: u64, n: usize, d: usize) -> LinearScan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        rows.push((0..d).map(|i| if i == 0 { 9.0 } else { 0.5 }).collect());
        rows.push(
            (0..d)
                .map(|i| if i == 1 || i == 2 { 4.0 } else { 0.4 })
                .collect(),
        );
        LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2)
    }

    #[test]
    fn matches_dynamic_search_minimal_frontier() {
        let d = 6;
        let e = engine(3, 120, d);
        let n = e.dataset().len();
        for qid in [n - 2, n - 1, 0, 5] {
            let q: Vec<f64> = e.dataset().row(qid).to_vec();
            for t in [1.5, 3.0, 8.0] {
                let frontier = frontier_search(&e, &q, Some(qid), 4, t, d, 1);
                assert!(frontier.complete);
                let dynamic = dynamic_search(&e, &q, Some(qid), 4, t, &Priors::uniform(d), 1);
                let expected = minimal_subspaces(&dynamic.subspaces());
                assert_eq!(frontier.minimal, expected, "point {qid} T {t}");
            }
        }
    }

    #[test]
    fn inlier_fast_path_costs_one_evaluation() {
        let e = engine(5, 100, 5);
        let q: Vec<f64> = e.dataset().row(10).to_vec();
        let out = frontier_search(&e, &q, Some(10), 4, 1e9, 5, 1);
        assert!(out.minimal.is_empty());
        assert!(out.complete);
        assert_eq!(out.stats.od_evals, 1);
    }

    #[test]
    fn works_beyond_the_lattice_limit() {
        // d = 40 would need a 2^40-byte lattice; the frontier search
        // handles it directly.
        let d = 40;
        let mut rng = StdRng::seed_from_u64(11);
        let mut rows: Vec<Vec<f64>> = (0..300)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let mut outlier: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
        outlier[7] = 30.0;
        outlier[23] = 30.0;
        rows.push(outlier);
        let e = LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2);
        let q: Vec<f64> = e.dataset().row(300).to_vec();
        let out = frontier_search(&e, &q, Some(300), 4, 20.0, 2, 1);
        assert_eq!(
            out.minimal,
            vec![Subspace::from_dims(&[7]), Subspace::from_dims(&[23])]
        );
        // Exact cost accounting: 1 full-space check + 40 singles +
        // C(38,2) pairs over the surviving dimensions.
        assert_eq!(out.stats.od_evals, 1 + 40 + 38 * 37 / 2);
    }

    #[test]
    fn max_dim_truncation_is_reported() {
        // A point whose only minimal outlying subspace is 3-d: with
        // max_dim = 2 the search must return nothing and admit
        // incompleteness.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let a = rng.gen_range(0.0..1.0);
            let b = rng.gen_range(0.0..1.0);
            // c tracks a+b: only the triple breaks.
            let c = (a + b) / 2.0 + rng.gen_range(-0.02..0.02);
            rows.push(vec![a, b, c, rng.gen_range(0.0..1.0)]);
        }
        rows.push(vec![0.2, 0.2, 0.95, 0.5]);
        let e = LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2);
        let q: Vec<f64> = e.dataset().row(200).to_vec();
        // Find a threshold separating the triple from all pairs.
        let triple = Subspace::from_dims(&[0, 1, 2]);
        let od3 = e.od(&q, 4, triple, Some(200));
        let worst_pair = Subspace::all_of_dim(4, 2)
            .map(|s| e.od(&q, 4, s, Some(200)))
            .fold(0.0f64, f64::max);
        let t = (od3 + worst_pair) / 2.0;
        assert!(od3 > worst_pair, "workload does not isolate the triple");

        let capped = frontier_search(&e, &q, Some(200), 4, t, 2, 1);
        assert!(capped.minimal.is_empty());
        assert!(!capped.complete);
        let full = frontier_search(&e, &q, Some(200), 4, t, 4, 1);
        assert!(full.complete);
        assert!(full.minimal.contains(&triple), "{:?}", full.minimal);
    }

    #[test]
    fn parallel_agrees_with_serial() {
        let e = engine(13, 150, 7);
        let q: Vec<f64> = e.dataset().row(150).to_vec();
        let a = frontier_search(&e, &q, Some(150), 4, 3.0, 7, 1);
        let b = frontier_search(&e, &q, Some(150), 4, 3.0, 7, 4);
        assert_eq!(a.minimal, b.minimal);
    }

    #[test]
    #[should_panic]
    fn zero_max_dim_panics() {
        let e = engine(1, 20, 3);
        let q = vec![0.5; 3];
        let _ = frontier_search(&e, &q, None, 2, 1.0, 0, 1);
    }
}
